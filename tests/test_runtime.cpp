// The runtime layer: Params parsing, the kernel registry, and adapter
// parity - a kernel driven through the uniform bind/launch/fetch lifecycle
// must report exactly the cycles (and produce exactly the outputs) of the
// same configuration driven through its concrete class.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"
#include "runtime/registry.h"

namespace {

using namespace pp;
using common::cq15;
using runtime::Params;

bool same_q15(const std::vector<cq15>& a, const std::vector<cq15>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

TEST(Params, TypedAccessorsAndParse) {
  const auto p = Params::parse("n=1024,inst=4,folded=0,mode=serial,flag");
  EXPECT_EQ(p.getu("n", 0), 1024u);
  EXPECT_EQ(p.getu("inst", 0), 4u);
  EXPECT_FALSE(p.getb("folded", true));
  EXPECT_TRUE(p.getb("flag", false));
  EXPECT_EQ(p.gets("mode", "parallel"), "serial");
  EXPECT_EQ(p.getu("absent", 7), 7u);
  EXPECT_FALSE(p.has("absent"));
}

TEST(Params, SetOverwritesAndDescribes) {
  Params p;
  p.set("n", 64u).set("n", 128u).set("mode", "serial");
  EXPECT_EQ(p.getu("n", 0), 128u);
  EXPECT_EQ(p.describe(), "n=128 mode=serial");
}

TEST(Params, PlainIntLiteralsAndKeyManagement) {
  // The documented quickstart style: un-suffixed integer literals.
  Params p = Params().set("n", 256).set("inst", 4).set("folded", false);
  EXPECT_EQ(p.getu("n", 0), 256u);
  EXPECT_EQ(p.keys(), (std::vector<std::string>{"n", "inst", "folded"}));
  p.unset("inst");
  EXPECT_FALSE(p.has("inst"));
  EXPECT_EQ(p.keys(), (std::vector<std::string>{"n", "folded"}));
}

TEST(Registry, ListsAllBuiltinKernels) {
  const auto& reg = runtime::Registry::instance();
  for (const char* name :
       {"fft.serial", "fft.parallel", "mmm", "chol.batch", "chol.pair",
        "chol.serial", "trisolve.batch", "gram.batch", "che", "ne"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_FALSE(reg.contains("nonexistent"));
  EXPECT_GE(reg.list().size(), 10u);
}

// Every registered kernel launches with default stimulus on the small test
// cluster and reports a plausible region.
TEST(Registry, EveryKernelRunsWithDefaultStimulus) {
  const auto cfg = arch::Cluster_config::minipool();
  const std::vector<std::pair<std::string, Params>> cases = {
      {"fft.serial", Params().set("n", 64u)},
      {"fft.parallel", Params().set("n", 64u).set("inst", 2u)},
      {"mmm", Params().set("m", 32u).set("k", 8u).set("p", 8u)},
      {"chol.batch", Params().set("n", 4u).set("per_core", 2u)},
      {"chol.pair", Params().set("n", 8u).set("pairs", 2u)},
      {"chol.serial", Params().set("n", 4u).set("reps", 2u)},
      {"trisolve.batch", Params().set("n", 4u).set("per_core", 2u)},
      {"gram.batch", Params().set("sc", 32u).set("b", 4u).set("l", 2u)},
      {"che", Params().set("sc", 32u).set("b", 4u).set("l", 2u)},
      {"ne", Params().set("sc", 32u).set("b", 4u).set("l", 2u)},
  };
  for (const auto& [name, params] : cases) {
    const auto r = bench::measure_kernel(cfg, name, params);
    EXPECT_GT(r.rep.cycles, 0u) << name;
    EXPECT_GT(r.rep.instrs, 0u) << name;
    EXPECT_GT(r.desc.cores, 0u) << name;
    EXPECT_EQ(r.desc.name, name);
  }
}

// The desc reflects resolved parameters (cluster-dependent defaults).
TEST(Registry, DescResolvesClusterDefaults) {
  const auto cfg = arch::Cluster_config::minipool();  // 16 cores
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  // inst=0 means "fill the cluster": 64-pt FFT needs 4 cores per gang.
  auto k = runtime::make_kernel("fft.parallel", m, alloc,
                                Params().set("n", 64u).set("inst", 0u));
  EXPECT_EQ(k->desc().params.getu("inst", 0), 4u);
  EXPECT_EQ(k->desc().cores, 16u);
  EXPECT_EQ(k->slots("x"), 4u);
  EXPECT_EQ(k->slots("bogus"), 0u);
}

// ---- adapter parity: registry lifecycle == direct kernel class ----------

TEST(AdapterParity, FftParallelMatchesDirectClass) {
  const auto cfg = arch::Cluster_config::minipool();
  const uint32_t n = 256, inst = 1, reps = 2;
  const auto x0 = bench::random_signal(n, 11);
  const auto x1 = bench::random_signal(n, 12);

  sim::Machine m1(cfg);
  arch::L1_alloc a1(m1.config());
  kernels::Fft_parallel direct(m1, a1, n, inst, reps);
  direct.set_input(0, 0, x0);
  direct.set_input(0, 1, x1);
  const auto want = direct.run();

  sim::Machine m2(cfg);
  arch::L1_alloc a2(m2.config());
  auto k = runtime::make_kernel(
      "fft.parallel", m2, a2,
      Params().set("n", n).set("inst", inst).set("reps", reps));
  k->bind("x", 0, x0);
  k->bind("x", 1, x1);
  const auto got = k->launch();

  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.instrs, want.instrs);
  EXPECT_EQ(got.n_cores, want.n_cores);
  EXPECT_TRUE(same_q15(k->fetch("y", 0), direct.output(0, 0)));
  EXPECT_TRUE(same_q15(k->fetch("y", 1), direct.output(0, 1)));
}

TEST(AdapterParity, MmmMatchesDirectClass) {
  const auto cfg = arch::Cluster_config::minipool();
  const kernels::Mmm_dims d{32, 8, 8};
  const auto a = bench::random_signal(size_t{d.m} * d.k, 1);
  const auto b = bench::random_signal(size_t{d.k} * d.p, 2);

  sim::Machine m1(cfg);
  arch::L1_alloc a1(m1.config());
  kernels::Mmm direct(m1, a1, d);
  direct.set_a(a);
  direct.set_b(b);
  const auto want = direct.run_parallel();

  sim::Machine m2(cfg);
  arch::L1_alloc a2(m2.config());
  auto k = runtime::make_kernel(
      "mmm", m2, a2, Params().set("m", d.m).set("k", d.k).set("p", d.p));
  k->bind("a", 0, a);
  k->bind("b", 0, b);
  const auto got = k->launch();

  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.instrs, want.instrs);
  EXPECT_TRUE(same_q15(k->fetch("c"), direct.c()));
  EXPECT_EQ(k->desc().macs, direct.cmacs());
}

TEST(AdapterParity, CholBatchMatchesDirectClass) {
  const auto cfg = arch::Cluster_config::minipool();
  const uint32_t per_core = 2, n_cores = cfg.n_cores();

  sim::Machine m1(cfg);
  arch::L1_alloc a1(m1.config());
  kernels::Chol_batch direct(m1, a1, 4, per_core, n_cores);
  sim::Machine m2(cfg);
  arch::L1_alloc a2(m2.config());
  auto k = runtime::make_kernel("chol.batch", m2, a2,
                                Params().set("n", 4u).set("per_core", per_core));

  for (uint32_t c = 0; c < n_cores; ++c) {
    const auto g = bench::random_spd(4, 100 + c);
    for (uint32_t i = 0; i < per_core; ++i) {
      direct.set_g(c, i, g);
      k->bind("g", c * per_core + i, g);
    }
  }
  const auto want = direct.run();
  const auto got = k->launch();

  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.instrs, want.instrs);
  for (uint32_t c = 0; c < n_cores; ++c) {
    for (uint32_t i = 0; i < per_core; ++i) {
      EXPECT_TRUE(same_q15(k->fetch("l", c * per_core + i), direct.l(c, i)));
    }
  }
}

// Scalar ports: NE produces its estimate through fetch_scalar.
TEST(AdapterParity, NeScalarOutput) {
  const auto cfg = arch::Cluster_config::minipool();
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  auto k = runtime::make_kernel(
      "ne", m, alloc, Params().set("sc", 32u).set("b", 4u).set("l", 2u));
  common::Rng rng(5);
  k->bind_default_inputs(rng);
  k->launch();
  const double s2 = k->fetch_scalar("sigma2");
  EXPECT_GT(s2, 0.0);
  EXPECT_LT(s2, 1.0);
}

}  // namespace
