// Integration tests at the published cluster scales (256-core MemPool,
// 1024-core TeraPool): functional correctness and the paper's headline
// efficiency properties at full size, plus end-to-end sweeps.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"
#include "phy/uplink.h"
#include "pusch/uplink_chain.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;

std::vector<cq15> random_signal(uint32_t n, uint64_t seed, double amp = 0.25) {
  Rng rng(seed);
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

// Full-size 4096-point FFT on a 256-core gang matches the serial kernel
// bit-for-bit and meets the paper's efficiency claims.
TEST(Scale, Fft4096OnMempoolGang) {
  sim::Machine m(arch::Cluster_config::mempool());
  arch::L1_alloc alloc(m.config());
  kernels::Fft_serial s(m, alloc, 4096, 1);
  kernels::Fft_parallel p(m, alloc, 4096, 1, 1);

  const auto x = random_signal(4096, 1234);
  s.set_input(0, x);
  p.set_input(0, 0, x);
  const auto rs = s.run();
  const auto rp = p.run();

  EXPECT_EQ(s.output(0), p.output(0, 0));  // bit-exact
  EXPECT_EQ(rp.n_cores, 256u);
  EXPECT_LT(rp.frac_memory_stalls(), 0.25);  // RAW includes barrier waits
  // Paper's Fig. 9a single-4096-FFT point: speedup well over 100.
  EXPECT_GT(static_cast<double>(rs.cycles) / rp.cycles, 100.0);
}

// Batched FFTs on TeraPool hit the paper's headline utilization band.
TEST(Scale, BatchedFftUtilizationTerapool) {
  sim::Machine m(arch::Cluster_config::terapool());
  arch::L1_alloc alloc(m.config());
  kernels::Fft_parallel fft(m, alloc, 4096, 4, 4);
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t r = 0; r < 4; ++r) {
      fft.set_input(i, r, random_signal(4096, i * 4 + r));
    }
  }
  const auto rep = fft.run();
  EXPECT_EQ(rep.n_cores, 1024u);
  EXPECT_GT(rep.ipc(), 0.7);  // paper: 0.74 with deeper batching
  EXPECT_LT(rep.frac_memory_stalls(), 0.10);
}

// The use-case MMM shape on TeraPool: utilization and MACs/cycle in the
// paper's band, results matching the reference.
TEST(Scale, UseCaseMmmOnTerapool) {
  sim::Machine m(arch::Cluster_config::terapool());
  arch::L1_alloc alloc(m.config());
  const kernels::Mmm_dims d{2048, 64, 32};  // row slice of the use case
  kernels::Mmm mmm(m, alloc, d);
  // Moderate amplitudes: 64-deep accumulations must not saturate Q1.15.
  const auto a = random_signal(d.m * d.k, 7, 0.12);
  const auto b = random_signal(d.k * d.p, 8, 0.12);
  mmm.set_a(a);
  mmm.set_b(b);
  const auto rep = mmm.run_parallel();
  EXPECT_GT(rep.ipc(), 0.6);
  const auto want = ref::matmul(to_cd(a), to_cd(b), d.m, d.k, d.p);
  EXPECT_GT(ref::sqnr_db(want, to_cd(mmm.c())), 35.0);
}

// 4096 4x4 Cholesky decompositions per data symbol on TeraPool (the
// use-case batch) all reconstruct their inputs.
TEST(Scale, UseCaseCholeskyBatchTerapool) {
  const auto cfg = arch::Cluster_config::terapool();
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Chol_batch chol(m, alloc, 4, 4, cfg.n_cores());

  Rng rng(77);
  std::vector<ref::cd> a(8 * 4);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 8, 4);
  for (int i = 0; i < 4; ++i) g[i * 4 + i] += 0.05;
  std::vector<cq15> gq(16);
  for (int i = 0; i < 16; ++i) gq[i] = common::to_cq15(g[i]);
  for (uint32_t c = 0; c < cfg.n_cores(); ++c) {
    for (uint32_t i = 0; i < 4; ++i) chol.set_g(c, i, gq);
  }
  const auto rep = chol.run();
  EXPECT_EQ(rep.n_cores, 1024u);
  // Spot-check reconstruction on a few cores.
  for (arch::core_id c : {0u, 511u, 1023u}) {
    const auto l = to_cd(chol.l(c, 3));
    for (uint32_t i = 0; i < 4; ++i) {
      for (uint32_t j = 0; j < 4; ++j) {
        ref::cd acc{0, 0};
        for (uint32_t k = 0; k < 4; ++k) {
          acc += l[i * 4 + k] * std::conj(l[j * 4 + k]);
        }
        EXPECT_NEAR(std::abs(acc - g[i * 4 + j]), 0.0, 5e-3);
      }
    }
  }
}

// --- end-to-end sweeps ------------------------------------------------

struct E2eCase {
  phy::Qam qam;
  uint64_t seed;
};

class E2eSweep : public ::testing::TestWithParam<E2eCase> {};

TEST_P(E2eSweep, ZeroBerAtHighSnr) {
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  // 16-QAM needs more array gain than QPSK to clear the Q15 noise floor.
  const bool dense = GetParam().qam != phy::Qam::qpsk;
  cfg.n_rx = dense ? 16 : 4;
  cfg.n_beams = dense ? 8 : 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = GetParam().qam;
  cfg.sigma2 = 1e-8;
  cfg.ue_power = 0.08;
  cfg.seed = GetParam().seed;
  const phy::Uplink_scenario sc(cfg);
  const auto res = pusch::run_sim_uplink(sc, arch::Cluster_config::minipool());
  // QPSK and 16-QAM must decode cleanly through the Q15 chain.
  EXPECT_EQ(res.ber, 0.0) << "EVM " << res.evm;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, E2eSweep,
    ::testing::Values(E2eCase{phy::Qam::qpsk, 1}, E2eCase{phy::Qam::qpsk, 2},
                      E2eCase{phy::Qam::qam16, 3},
                      E2eCase{phy::Qam::qam16, 4}));

// The same slot decodes identically on MemPool and TeraPool (the cluster
// size changes timing, never values).
TEST(Scale, ChainValuesClusterInvariant) {
  phy::Uplink_config cfg;
  cfg.n_sc = 256;
  cfg.fft_size = 256;
  cfg.n_rx = 16;
  cfg.n_beams = 8;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;  // focus: cluster invariance, not QAM headroom
  cfg.sigma2 = 1e-8;
  cfg.ue_power = 0.08;
  cfg.seed = 99;
  const phy::Uplink_scenario sc(cfg);

  const auto on_mp = pusch::run_sim_uplink(sc, arch::Cluster_config::mempool());
  const auto on_tp =
      pusch::run_sim_uplink(sc, arch::Cluster_config::terapool());
  // Decoded payloads agree; EVM may differ in the last bits because the NE
  // reduction rounds per-core partial sums and the partition depends on the
  // core count.
  EXPECT_EQ(on_mp.bits, on_tp.bits);
  EXPECT_NEAR(on_mp.evm, on_tp.evm, 0.02);
  EXPECT_EQ(on_mp.ber, 0.0);
}

}  // namespace
