// Cross-backend scenario parity: the deterministic serving surface -
// payload bits, BER, the HARQ schedule/verdicts, admission counters,
// deadline histograms and the virtual makespan - must be identical across
// all four backends and every host-parallelism knob
// (Schedule_result::scenario_equal; docs/DETERMINISM.md "Channel profiles
// & HARQ determinism").
//
// Two operating points:
//   benign grid   numerology x UE x QAM x profile mix where every backend
//                 decodes the same bits (the Q15 family has a
//                 quantization-noise BER floor on frequency-selective TDL
//                 channels, so dense constellations there split the
//                 families - the grid stays inside the common envelope,
//                 and pins that envelope).
//   HARQ surface  a failure-rich fading mix with the retransmission loop
//                 closed, compared within each arithmetic family (double:
//                 reference vs. parallel, Q15: fixed vs. sim) and across
//                 the worker / intra / pipelined / sim-shards ladder.
//
// Both use analytic_service: the predictor clock is the one service model
// every backend shares (simulated cycles are a legitimately different
// clock).
#include <gtest/gtest.h>

#include "runtime/scheduler.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::Schedule_result;
using runtime::Scheduler_options;
using runtime::Slot_scheduler;
using runtime::Traffic_cell;
using runtime::Traffic_config;
using runtime::Traffic_source;

// mu 0/1/2 x UE 1/2 x qam16/qpsk x flat/tdl-a/tdl-c.  Zero Doppler and a
// short delay spread keep every slot inside the Q15 envelope (verified
// empirically; the decode is exact on all four backends at this seed).
Traffic_config benign_grid() {
  Traffic_config cfg;
  cfg.n_slots = 12;
  cfg.base_seed = 7;
  Traffic_cell flat;
  flat.mu = 0;
  flat.fft_size = 64;
  flat.n_ue = 1;
  flat.qam = phy::Qam::qam16;
  flat.load = 0.8;
  Traffic_cell tdla;
  tdla.mu = 1;
  tdla.fft_size = 64;
  tdla.n_ue = 2;
  tdla.qam = phy::Qam::qpsk;
  tdla.load = 0.8;
  tdla.profile = phy::Channel_profile::tdl_a;
  tdla.delay_spread = 1.0;
  Traffic_cell tdlc;
  tdlc.mu = 2;
  tdlc.fft_size = 64;
  tdlc.n_ue = 2;
  tdlc.qam = phy::Qam::qpsk;
  tdlc.load = 0.8;
  tdlc.profile = phy::Channel_profile::tdl_c;
  tdlc.delay_spread = 1.0;
  cfg.cells = {flat, tdla, tdlc};
  return cfg;
}

// Failure-rich fading mix: Doppler-aged TDL cells whose decode misses the
// threshold often enough to retransmit, recover and exhaust.
Traffic_config harq_mix(uint64_t n_slots) {
  Traffic_config cfg = benign_grid();
  cfg.n_slots = n_slots;
  cfg.base_seed = 3;
  cfg.cells[1].qam = phy::Qam::qam16;
  cfg.cells[1].doppler_hz = 16.0;
  cfg.cells[1].delay_spread = 4.0;
  cfg.cells[2].n_ue = 4;
  cfg.cells[2].qam = phy::Qam::qam64;
  cfg.cells[2].doppler_hz = 16.0;
  cfg.cells[2].delay_spread = 4.0;
  return cfg;
}

Scheduler_options base_options() {
  Scheduler_options opt;
  opt.workers = 1;
  opt.analytic_service = true;
  opt.keep_slots = true;
  return opt;
}

Scheduler_options harq_options() {
  Scheduler_options opt = base_options();
  opt.max_harq = 2;
  opt.harq_ber = 0.005;
  opt.shards = 2;
  opt.overload = "drop";
  // Scaled clock (bench_scenario_mix's trick): analytic service times in
  // the slot-budget regime, so the drop policy sees retransmission
  // pressure instead of idling.
  opt.clock_ghz = 0.01;
  return opt;
}

void expect_bits_equal(const Schedule_result& a, const Schedule_result& b) {
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].bits, b.slots[i].bits) << "slot " << i;
  }
}

TEST(ScenarioParity, AllFourBackendsAgreeOnTheBenignGrid) {
  const Traffic_source src(benign_grid());
  Scheduler_options opt = base_options();
  const auto ref = Slot_scheduler(opt).run(src);
  ASSERT_EQ(ref.groups.size(), 3u);
  for (const auto& g : ref.groups) EXPECT_GT(g.slots, 0u) << g.label;

  for (const char* backend : {"parallel", "fixed", "sim"}) {
    for (const uint32_t workers : {1u, 2u, 8u}) {
      Scheduler_options other = base_options();
      other.backend = backend;
      other.workers = workers;
      const auto res = Slot_scheduler(other).run(src);
      EXPECT_TRUE(ref.scenario_equal(res))
          << backend << " @ " << workers << " workers";
      expect_bits_equal(ref, res);
    }
  }
}

TEST(ScenarioParity, WorkerLadderIsInvariantOnTheHarqSurface) {
  const Traffic_source src(harq_mix(24));
  Scheduler_options opt = harq_options();
  const auto serial = Slot_scheduler(opt).run(src);
  // The loop and the admission controller must both be active here, or
  // the ladder is vacuous.
  EXPECT_GT(serial.harq_retx, 0u);
  EXPECT_GT(serial.harq_recovered + serial.harq_exhausted, 0u);
  EXPECT_GT(serial.dropped, 0u);

  for (const uint32_t workers : {2u, 8u}) {
    for (const bool pipelined : {false, true}) {
      Scheduler_options other = opt;
      other.workers = workers;
      other.pipelined = pipelined;
      EXPECT_TRUE(serial.deterministic_equal(Slot_scheduler(other).run(src)))
          << workers << " workers, pipelined=" << pipelined;
    }
  }
}

TEST(ScenarioParity, DoubleFamilyAgreesOnTheHarqSurface) {
  const Traffic_source src(harq_mix(16));
  Scheduler_options opt = harq_options();
  const auto ref = Slot_scheduler(opt).run(src);

  Scheduler_options par = opt;
  par.backend = "parallel";
  par.intra = 2;
  par.workers = 2;
  par.pipelined = true;
  const auto res = Slot_scheduler(par).run(src);
  // Same arithmetic family: the full deterministic surface matches, not
  // just the scenario subset.
  EXPECT_TRUE(ref.deterministic_equal(res));
  expect_bits_equal(ref, res);
}

TEST(ScenarioParity, Q15FamilyAgreesOnTheHarqSurface) {
  const Traffic_source src(harq_mix(8));
  Scheduler_options opt = harq_options();
  opt.backend = "fixed";
  const auto fixed = Slot_scheduler(opt).run(src);
  EXPECT_GT(fixed.harq_retx, 0u);

  Scheduler_options sim = opt;
  sim.backend = "sim";
  sim.sim_shards = 2;
  const auto simulated = Slot_scheduler(sim).run(src);
  // The host Q15 backend and the cycle-accurate simulator decode the same
  // bits, so with the shared analytic service clock the whole scenario
  // surface (cycles excluded) must match.
  EXPECT_TRUE(fixed.scenario_equal(simulated));
  expect_bits_equal(fixed, simulated);
}

TEST(ScenarioParity, SimShardLadderIsInvariantOnTheHarqSurface) {
  const Traffic_source src(harq_mix(8));
  Scheduler_options opt = harq_options();
  opt.backend = "sim";
  opt.sim_shards = 1;
  const auto one = Slot_scheduler(opt).run(src);
  for (const uint32_t shards : {2u, 8u}) {
    Scheduler_options other = opt;
    other.sim_shards = shards;
    EXPECT_TRUE(one.deterministic_equal(Slot_scheduler(other).run(src)))
        << shards << " sim shards";
  }
}

}  // namespace
