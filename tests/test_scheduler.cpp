// Slot_scheduler determinism and compatibility tests.
//
// The load-bearing guarantees of the scheduler refactor:
//   - the Grid_source path is bit-identical to the pre-refactor sweep
//     engine (a serial slot_config + Pipeline::execute loop) at any worker
//     count, and Sweep_runner's wrapper output matches it;
//   - a fixed-seed Traffic_source run produces identical aggregate reports
//     (slot results, latency histograms, deadline-miss counts) at any
//     worker count and with stage pipelining on or off;
//   - the stage-split backend entry points (run_front + run_back) are
//     bit-identical to run_slot on both host backends.
#include <gtest/gtest.h>

#include "runtime/backend.h"
#include "runtime/backend_parallel.h"
#include "runtime/scheduler.h"
#include "runtime/sweep.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::Grid_source;
using runtime::Schedule_result;
using runtime::Scheduler_options;
using runtime::Slot_scheduler;
using runtime::Sweep_grid;
using runtime::Sweep_runner;
using runtime::Traffic_cell;
using runtime::Traffic_config;
using runtime::Traffic_source;

void expect_slots_identical(const std::vector<runtime::Slot_result>& a,
                            const std::vector<runtime::Slot_result>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bits, b[i].bits) << "slot " << i;
    EXPECT_EQ(a[i].evm, b[i].evm) << "slot " << i;
    EXPECT_EQ(a[i].ber, b[i].ber) << "slot " << i;
    EXPECT_EQ(a[i].sigma2_hat, b[i].sigma2_hat) << "slot " << i;
    EXPECT_EQ(a[i].total_cycles(), b[i].total_cycles()) << "slot " << i;
  }
}

void expect_aggregates_identical(const Schedule_result& a,
                                 const Schedule_result& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].slots, b.groups[g].slots) << "group " << g;
    EXPECT_EQ(a.groups[g].evm, b.groups[g].evm) << "group " << g;
    EXPECT_EQ(a.groups[g].ber, b.groups[g].ber) << "group " << g;
    EXPECT_EQ(a.groups[g].sigma2_hat, b.groups[g].sigma2_hat)
        << "group " << g;
    EXPECT_EQ(a.groups[g].cycles, b.groups[g].cycles) << "group " << g;
    EXPECT_EQ(a.groups[g].deadline_misses, b.groups[g].deadline_misses)
        << "group " << g;
    EXPECT_TRUE(a.groups[g].latency == b.groups[g].latency) << "group " << g;
  }
  EXPECT_EQ(a.deadline_slots, b.deadline_slots);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_TRUE(a.latency == b.latency);
  EXPECT_EQ(a.virtual_makespan_s, b.virtual_makespan_s);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_slots, b.total_slots);
  // The field-wise checks above give readable failures; the single-source
  // helper (which bench_serve_latency's re-check also uses) must agree.
  EXPECT_TRUE(a.deterministic_equal(b));
}

Sweep_grid small_grid() {
  Sweep_grid g;
  g.fft_sizes = {16, 64};
  g.snr_db = {15, 25, 30};
  g.slots_per_point = 2;
  return g;
}

Traffic_config small_traffic(uint64_t n_slots = 16) {
  Traffic_config cfg;
  cfg.n_slots = n_slots;
  cfg.base_seed = 11;
  Traffic_cell a;
  a.mu = 1;
  a.fft_size = 64;
  a.load = 0.7;
  Traffic_cell b;
  b.mu = 2;
  b.fft_size = 16;
  b.qam = phy::Qam::qpsk;
  b.load = 1.2;
  // Tight override (well under the cell's analytic service time) so the
  // miss counters are exercised, not just zero.
  b.budget_s = 5e-8;
  cfg.cells = {a, b};
  return cfg;
}

TEST(Scheduler, GridSourceBitIdenticalToPreRefactorSweepLoop) {
  // The pre-refactor Sweep_runner semantics, reconstructed by hand: walk
  // the grid in slot-index order, one scenario per slot from slot_config,
  // executed on a single backend.  The scheduler must reproduce it bit for
  // bit at 1, 2 and 8 workers.
  const Sweep_grid grid = small_grid();
  const auto points = grid.points();
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool(), {});
  auto backend = runtime::make_backend("reference");
  std::vector<runtime::Slot_result> legacy(grid.n_slots());
  for (uint64_t i = 0; i < grid.n_slots(); ++i) {
    const phy::Uplink_scenario sc(Sweep_runner::slot_config(
        grid, points[i / grid.slots_per_point], i));
    legacy[i] = pipeline.execute(sc, *backend);
  }

  for (const uint32_t workers : {1u, 2u, 8u}) {
    Scheduler_options opt;
    opt.workers = workers;
    const auto res = Slot_scheduler(opt).run(Grid_source(grid));
    expect_slots_identical(res.slots, legacy);
  }
}

TEST(Scheduler, SweepRunnerWrapperMatchesSchedulerGroups) {
  const Sweep_grid grid = small_grid();
  Scheduler_options sopt;
  sopt.workers = 2;
  const auto sched = Slot_scheduler(sopt).run(Grid_source(grid));

  runtime::Sweep_options wopt;
  wopt.workers = 2;
  const auto sweep = Sweep_runner(wopt).run(grid);
  ASSERT_EQ(sweep.points.size(), sched.groups.size());
  for (size_t p = 0; p < sweep.points.size(); ++p) {
    EXPECT_EQ(sweep.points[p].evm, sched.groups[p].evm);
    EXPECT_EQ(sweep.points[p].ber, sched.groups[p].ber);
    EXPECT_EQ(sweep.points[p].sigma2_hat, sched.groups[p].sigma2_hat);
    EXPECT_EQ(sweep.points[p].cycles, sched.groups[p].cycles);
  }
  expect_slots_identical(sweep.slots, sched.slots);
}

TEST(Scheduler, GridJobsAreBatchSemantics) {
  const Grid_source src(small_grid());
  ASSERT_EQ(src.n_slots(), 12u);
  EXPECT_EQ(src.n_groups(), 6u);
  for (uint64_t i = 0; i < src.n_slots(); ++i) {
    const auto job = src.job(i);
    EXPECT_EQ(job.arrival_s, 0.0);
    EXPECT_EQ(job.budget_s, 0.0);  // batch jobs carry no deadline
    EXPECT_EQ(job.group, i / 2);
  }
}

TEST(Scheduler, TrafficAggregatesInvariantAcrossWorkersAndPipelining) {
  const Traffic_source src(small_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  opt.pipelined = false;
  const auto serial = Slot_scheduler(opt).run(src);
  EXPECT_FALSE(serial.pipelined);
  EXPECT_GT(serial.deadline_misses, 0u);  // the tight budget must bite
  EXPECT_LT(serial.deadline_misses, serial.deadline_slots);

  struct Case {
    uint32_t workers;
    bool pipelined;
  };
  for (const Case c : {Case{2, false}, Case{1, true}, Case{3, true}}) {
    opt.workers = c.workers;
    opt.pipelined = c.pipelined;
    const auto res = Slot_scheduler(opt).run(src);
    EXPECT_EQ(res.pipelined, c.pipelined);  // reference backend can split
    expect_slots_identical(res.slots, serial.slots);
    expect_aggregates_identical(res, serial);
  }
}

TEST(Scheduler, SimBackendDeadlineAccountingWorkerInvariant) {
  const Traffic_source src(small_traffic(4));
  Scheduler_options opt;
  opt.backend = "sim";
  opt.clock_ghz = 0.02;  // scaled virtual clock: cycles vs. the mu budgets
  opt.workers = 1;
  const auto serial = Slot_scheduler(opt).run(src);
  opt.workers = 2;
  opt.pipelined = true;  // must silently fall back: sim cannot split
  const auto parallel = Slot_scheduler(opt).run(src);
  EXPECT_FALSE(parallel.pipelined);
  EXPECT_GT(serial.total_cycles, 0u);
  expect_slots_identical(parallel.slots, serial.slots);
  expect_aggregates_identical(parallel, serial);
}

TEST(Scheduler, SplitBackendsMatchRunSlot) {
  // run_back(run_front()) == run_slot on both host backends - the bit
  // contract stage pipelining rests on.
  const auto cluster = arch::Cluster_config::minipool();
  const auto pipeline = runtime::uplink_pipeline(cluster, {});
  const phy::Uplink_scenario sc(
      Sweep_runner::slot_config(small_grid(), small_grid().points()[1], 3));
  for (const char* name : {"reference", "parallel", "fixed"}) {
    auto whole = runtime::make_backend(name, 2);
    auto split = runtime::make_backend(name, 2);
    ASSERT_TRUE(whole->can_split()) << name;
    const auto a = whole->run_slot(pipeline, sc);
    const auto b =
        split->run_back(pipeline, sc, split->run_front(pipeline, sc));
    EXPECT_EQ(a.bits, b.bits) << name;
    EXPECT_EQ(a.evm, b.evm) << name;
    EXPECT_EQ(a.ber, b.ber) << name;
    EXPECT_EQ(a.sigma2_hat, b.sigma2_hat) << name;
  }
  EXPECT_FALSE(runtime::make_backend("sim")->can_split());
}

TEST(Scheduler, AnalyticServiceModelIsPureAndClockScaled) {
  const auto cfg =
      Sweep_runner::slot_config(small_grid(), small_grid().points()[0], 0);
  const auto cluster = arch::Cluster_config::minipool();
  const double s1 = runtime::analytic_service_seconds(cfg, cluster, 1.0);
  EXPECT_GT(s1, 0.0);
  EXPECT_EQ(s1, runtime::analytic_service_seconds(cfg, cluster, 1.0));
  // Half the clock, twice the service time - exactly (both are powers of 2).
  EXPECT_EQ(runtime::analytic_service_seconds(cfg, cluster, 0.5), 2.0 * s1);
}

TEST(Scheduler, KeepSlotsOffDropsPerSlotResultsOnly) {
  const Traffic_source src(small_traffic(8));
  Scheduler_options opt;
  opt.workers = 2;
  opt.keep_slots = false;
  const auto res = Slot_scheduler(opt).run(src);
  EXPECT_TRUE(res.slots.empty());
  EXPECT_EQ(res.total_slots, 8u);
  EXPECT_EQ(res.latency.count(), 8u);
  uint32_t slots = 0;
  for (const auto& g : res.groups) slots += g.slots;
  EXPECT_EQ(slots, 8u);
}

TEST(Scheduler, EmptySourceYieldsEmptyResult) {
  Traffic_config cfg = small_traffic();
  cfg.n_slots = 0;
  const auto res = Slot_scheduler(Scheduler_options{}).run(Traffic_source(cfg));
  EXPECT_EQ(res.total_slots, 0u);
  EXPECT_EQ(res.latency.count(), 0u);
  EXPECT_EQ(res.deadline_misses, 0u);
  ASSERT_EQ(res.groups.size(), 2u);  // cells still listed, zero slots each
  EXPECT_EQ(res.groups[0].slots, 0u);
  EXPECT_EQ(res.slots_per_second(), 0.0);
}

TEST(Scheduler, RendersTableWithLatencyFooter) {
  const auto res = Slot_scheduler(Scheduler_options{}).run(Traffic_source(small_traffic(6)));
  const std::string table = res.str();
  EXPECT_NE(table.find("miss/dl"), std::string::npos);
  EXPECT_NE(table.find("virtual clock"), std::string::npos);
  EXPECT_NE(table.find("deadline misses"), std::string::npos);
}

// ---- sharded serving engine + admission control ------------------------

// A 4-cell mix with distinct loads so load-aware placement has something to
// balance and the tight-budget cells exercise the overload policies.
Traffic_config serving_traffic(uint64_t n_slots = 24) {
  Traffic_config cfg;
  cfg.n_slots = n_slots;
  cfg.base_seed = 23;
  Traffic_cell heavy;
  heavy.mu = 1;
  heavy.fft_size = 64;
  heavy.n_ue = 4;
  heavy.load = 1.4;
  heavy.budget_s = 2e-7;  // tight: forces drops / degrades under pressure
  Traffic_cell mid;
  mid.mu = 1;
  mid.fft_size = 64;
  mid.load = 0.9;
  Traffic_cell light;
  light.mu = 2;
  light.fft_size = 16;
  light.qam = phy::Qam::qpsk;
  light.load = 0.6;
  Traffic_cell tiny;
  tiny.mu = 2;
  tiny.fft_size = 16;
  tiny.qam = phy::Qam::qpsk;
  tiny.n_ue = 1;
  tiny.load = 0.3;
  tiny.budget_s = 5e-8;
  cfg.cells = {heavy, mid, light, tiny};
  return cfg;
}

TEST(Scheduler, SingleShardOffPolicyIsThePreShardingEngine) {
  // shards = 1 + overload off must be bit-for-bit today's engine: every job
  // admitted, one FCFS queue, group aggregates over all slots, and the
  // global histogram equal to the single shard's.
  const Traffic_source src(small_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  const auto res = Slot_scheduler(opt).run(src);
  ASSERT_EQ(res.shards.size(), 1u);
  EXPECT_EQ(res.admitted, res.total_slots);
  EXPECT_EQ(res.dropped, 0u);
  EXPECT_EQ(res.degraded, 0u);
  EXPECT_TRUE(res.shards[0].latency == res.latency);
  EXPECT_EQ(res.shards[0].groups, 2u);
  for (const auto& g : res.groups) {
    EXPECT_EQ(g.shard, 0u);
    EXPECT_EQ(g.admitted, g.slots);
  }
  // Placement policy is irrelevant at one shard - bit-identical results.
  opt.placement = "load-aware";
  expect_aggregates_identical(Slot_scheduler(opt).run(src), res);
}

TEST(Scheduler, ShardingPreservesSlotResultsAndSplitsTheQueue) {
  // With overload off, sharding never changes what executes - only the
  // virtual queueing.  Per-slot results and group EVM/BER/cycles must stay
  // bit-identical to the unsharded run; latency/deadline surfaces may
  // legitimately differ (shorter queues), and the shard roll-ups must
  // partition the totals.
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  const auto unsharded = Slot_scheduler(opt).run(src);
  opt.shards = 2;
  const auto sharded = Slot_scheduler(opt).run(src);
  expect_slots_identical(sharded.slots, unsharded.slots);
  ASSERT_EQ(sharded.groups.size(), unsharded.groups.size());
  for (size_t g = 0; g < sharded.groups.size(); ++g) {
    EXPECT_EQ(sharded.groups[g].evm, unsharded.groups[g].evm);
    EXPECT_EQ(sharded.groups[g].ber, unsharded.groups[g].ber);
    EXPECT_EQ(sharded.groups[g].cycles, unsharded.groups[g].cycles);
    EXPECT_EQ(sharded.groups[g].shard, g % 2);  // round-robin
  }
  ASSERT_EQ(sharded.shards.size(), 2u);
  uint64_t slots = 0, groups = 0;
  runtime::Latency_histogram merged;
  for (const auto& s : sharded.shards) {
    slots += s.slots;
    groups += s.groups;
    merged.merge(s.latency);
  }
  EXPECT_EQ(slots, sharded.total_slots);
  EXPECT_EQ(groups, sharded.groups.size());
  EXPECT_TRUE(merged == sharded.latency);
  // Splitting one queue into two can only shorten waits.
  EXPECT_LE(sharded.deadline_misses, unsharded.deadline_misses);
}

TEST(Scheduler, ShardedServingInvariantAcrossWorkersPipeliningAndIntra) {
  // The whole sharded + admission surface must be bit-identical for any
  // host execution shape (DETERMINISM.md §8).
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  opt.shards = 2;
  opt.placement = "load-aware";
  opt.overload = "degrade";
  const auto serial = Slot_scheduler(opt).run(src);
  EXPECT_GT(serial.degraded, 0u);  // the tight heavy cell must degrade

  struct Case {
    uint32_t workers;
    uint32_t intra;
    bool pipelined;
    const char* backend;
  };
  for (const Case c : {Case{2, 1, false, "reference"},
                       Case{8, 1, false, "reference"},
                       Case{3, 1, true, "reference"},
                       Case{2, 2, true, "parallel"}}) {
    opt.workers = c.workers;
    opt.intra = c.intra;
    opt.pipelined = c.pipelined;
    opt.backend = c.backend;
    const auto res = Slot_scheduler(opt).run(src);
    // "parallel" is bit-identical to "reference", so the full aggregate
    // surface (EVM/BER included) matches across these shapes.
    expect_aggregates_identical(res, serial);
    EXPECT_EQ(res.admitted, serial.admitted);
    EXPECT_EQ(res.dropped, serial.dropped);
    EXPECT_EQ(res.degraded, serial.degraded);
  }

  // The fixed backend carries sim's Q15 numerics, so EVM/BER legitimately
  // differ from reference - but the serving surface (placement, admission
  // verdicts, per-shard queues, deadline misses) runs on the shared
  // analytic predictor and must be bit-identical across host backends.
  opt.workers = 2;
  opt.intra = 1;
  opt.pipelined = false;
  opt.backend = "fixed";
  const auto fixed = Slot_scheduler(opt).run(src);
  EXPECT_TRUE(fixed.latency == serial.latency);
  EXPECT_EQ(fixed.admitted, serial.admitted);
  EXPECT_EQ(fixed.dropped, serial.dropped);
  EXPECT_EQ(fixed.degraded, serial.degraded);
  EXPECT_EQ(fixed.deadline_misses, serial.deadline_misses);
  EXPECT_EQ(fixed.deadline_slots, serial.deadline_slots);
  EXPECT_EQ(fixed.virtual_makespan_s, serial.virtual_makespan_s);
  ASSERT_EQ(fixed.shards.size(), serial.shards.size());
  for (size_t s = 0; s < fixed.shards.size(); ++s) {
    EXPECT_TRUE(fixed.shards[s].latency == serial.shards[s].latency);
    EXPECT_EQ(fixed.shards[s].admitted, serial.shards[s].admitted);
    EXPECT_EQ(fixed.shards[s].dropped, serial.shards[s].dropped);
    EXPECT_EQ(fixed.shards[s].degraded, serial.shards[s].degraded);
  }
}

TEST(Scheduler, DropPolicyShedsWithoutExecuting) {
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 2;
  opt.overload = "drop";
  const auto res = Slot_scheduler(opt).run(src);
  EXPECT_GT(res.dropped, 0u);
  EXPECT_EQ(res.admitted + res.dropped, res.total_slots);
  // A dropped slot never reaches a backend: its kept Slot_result stays
  // default-constructed (no demodulated bits, no cycles).
  uint64_t defaulted = 0;
  for (const auto& s : res.slots) {
    if (s.bits.empty() && s.total_cycles() == 0) ++defaulted;
  }
  EXPECT_GE(defaulted, res.dropped);
  // Only executed slots are scored: histogram count == admitted.
  EXPECT_EQ(res.latency.count(), res.admitted);
  // Shedding over-budget jobs can only help the survivors' deadlines.
  opt.overload = "off";
  const auto base = Slot_scheduler(opt).run(src);
  EXPECT_LE(res.deadline_misses, base.deadline_misses);
}

TEST(Scheduler, QueuePolicyBoundsThePredictedBacklog) {
  // At 1 GHz the analytic service (~us) is dwarfed by the slot-duration
  // arrival gaps (~100s of us), so a backlog never builds; a slowed
  // virtual clock pushes the shard past saturation.
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  opt.clock_ghz = 1e-4;
  opt.overload = "queue";
  opt.queue_limit = 2;
  const auto res = Slot_scheduler(opt).run(src);
  EXPECT_GT(res.dropped, 0u);
  // A tighter bound sheds at least as much.
  opt.queue_limit = 1;
  EXPECT_GE(Slot_scheduler(opt).run(src).dropped, res.dropped);
  // An effectively unbounded queue admits everything.
  opt.queue_limit = 100000;
  EXPECT_EQ(Slot_scheduler(opt).run(src).dropped, 0u);
}

TEST(Scheduler, DegradedSlotsExecuteTheReplannedConfigBitExactly) {
  // A degraded slot must execute exactly as if the source had emitted the
  // re-planned config: find a degraded slot, run its re-planned config
  // directly, and compare bit-for-bit.
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 1;
  opt.overload = "degrade";
  const auto res = Slot_scheduler(opt).run(src);
  ASSERT_GT(res.degraded, 0u);
  EXPECT_EQ(res.dropped, 0u);  // degrade always admits
  EXPECT_EQ(res.admitted, res.total_slots);

  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool(), {});
  const auto backend = runtime::make_backend("reference");
  bool checked = false;
  for (uint64_t i = 0; i < src.n_slots() && !checked; ++i) {
    const auto job = src.job(i);
    phy::Uplink_config degraded = job.cfg;
    while (degraded.n_ue > 1) {
      degraded = phy::degrade_to_layers(degraded, degraded.n_ue - 1);
      const phy::Uplink_scenario sc(degraded);
      const auto direct = pipeline.execute(sc, *backend);
      if (direct.bits == res.slots[i].bits &&
          direct.evm == res.slots[i].evm) {
        checked = true;
        break;
      }
    }
  }
  EXPECT_TRUE(checked) << "no slot matched a re-planned layer count";
}

TEST(Scheduler, VirtualOnlyMatchesTheFullRunsDeadlineSurface) {
  // virtual_only skips every backend call but must reproduce the host
  // backends' deadline/admission surface bit for bit - that equivalence is
  // what makes bench_capacity's probes cheap and trustworthy.
  const Traffic_source src(serving_traffic());
  Scheduler_options opt;
  opt.workers = 2;
  opt.shards = 2;
  opt.placement = "load-aware";
  opt.overload = "drop";
  const auto full = Slot_scheduler(opt).run(src);
  opt.virtual_only = true;
  const auto virt = Slot_scheduler(opt).run(src);
  EXPECT_EQ(virt.total_cycles, 0u);
  EXPECT_EQ(virt.wall_service.count(), 0u);
  EXPECT_TRUE(virt.latency == full.latency);
  EXPECT_EQ(virt.admitted, full.admitted);
  EXPECT_EQ(virt.dropped, full.dropped);
  EXPECT_EQ(virt.deadline_misses, full.deadline_misses);
  EXPECT_EQ(virt.deadline_slots, full.deadline_slots);
  EXPECT_EQ(virt.virtual_makespan_s, full.virtual_makespan_s);
  ASSERT_EQ(virt.shards.size(), full.shards.size());
  for (size_t s = 0; s < virt.shards.size(); ++s) {
    EXPECT_TRUE(virt.shards[s].latency == full.shards[s].latency);
    EXPECT_EQ(virt.shards[s].dropped, full.shards[s].dropped);
  }
}

TEST(Scheduler, ShardedStrAddsShardTableAndServingSummary) {
  Scheduler_options opt;
  opt.workers = 1;
  opt.shards = 2;
  opt.overload = "drop";
  const auto res =
      Slot_scheduler(opt).run(Traffic_source(serving_traffic(12)));
  const std::string table = res.str();
  EXPECT_NE(table.find("adm/dr/dg"), std::string::npos);
  EXPECT_NE(table.find("serving: 2 shards"), std::string::npos);
  EXPECT_NE(table.find("overload drop"), std::string::npos);
}

}  // namespace
