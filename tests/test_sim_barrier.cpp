// Barrier and wake-up trigger tests: full-cluster and partial barriers,
// granularity selection, independence of concurrent subset barriers, and the
// safety property that no core passes a barrier before all arrive.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/barrier.h"
#include "sim/machine.h"

namespace {

using namespace pp;
using sim::Barrier;
using sim::Core;
using sim::Machine;
using sim::Prog;
using sim::Stall;
using sim::Wake_set;

arch::Cluster_config cfg16() { return arch::Cluster_config::minipool(); }

// --- Wake_set granularity selection --------------------------------------

TEST(WakeSet, FullClusterIsBroadcast) {
  const auto cfg = cfg16();
  std::vector<arch::core_id> all(cfg.n_cores());
  std::iota(all.begin(), all.end(), 0);
  const auto w = Wake_set::make(cfg, all);
  EXPECT_EQ(w.kind, Wake_set::Kind::all);
  EXPECT_EQ(w.n_csr_writes(), 1u);
  EXPECT_EQ(w.resolve(cfg).size(), cfg.n_cores());
}

TEST(WakeSet, WholeGroupUsesGroupCsr) {
  const auto cfg = cfg16();
  const uint32_t cpg = cfg.tiles_per_group * cfg.cores_per_tile;
  std::vector<arch::core_id> g1(cpg);
  std::iota(g1.begin(), g1.end(), cpg);  // group 1
  const auto w = Wake_set::make(cfg, g1);
  EXPECT_EQ(w.kind, Wake_set::Kind::groups);
  EXPECT_EQ(w.n_csr_writes(), 1u);
  const auto r = w.resolve(cfg);
  EXPECT_EQ(r.size(), cpg);
  EXPECT_EQ(r.front(), cpg);
}

TEST(WakeSet, WholeTilesUseTileCsrPerGroup) {
  const auto cfg = cfg16();
  // Tile 0 (group 0) and tile 2 (group 1): one tile-CSR write per group.
  std::vector<arch::core_id> cores;
  for (uint32_t i = 0; i < cfg.cores_per_tile; ++i) cores.push_back(i);
  for (uint32_t i = 0; i < cfg.cores_per_tile; ++i) {
    cores.push_back(2 * cfg.cores_per_tile + i);
  }
  std::sort(cores.begin(), cores.end());
  const auto w = Wake_set::make(cfg, cores);
  EXPECT_EQ(w.kind, Wake_set::Kind::tiles);
  EXPECT_EQ(w.n_csr_writes(), 2u);
  EXPECT_EQ(w.resolve(cfg).size(), cores.size());
}

TEST(WakeSet, IrregularSubsetFallsBackToPerCore) {
  const auto cfg = cfg16();
  std::vector<arch::core_id> cores = {0, 5, 9};
  const auto w = Wake_set::make(cfg, cores);
  EXPECT_EQ(w.kind, Wake_set::Kind::cores);
  EXPECT_EQ(w.n_csr_writes(), 3u);
  EXPECT_EQ(w.resolve(cfg), cores);
}

// --- barrier semantics -----------------------------------------------------

// Property: no core executes post-barrier work before every core has
// executed its pre-barrier work.
TEST(Barrier, NoCorePassesEarly) {
  Machine m(cfg16());
  arch::L1_alloc alloc(m.config());
  const auto& cfg = m.config();

  std::vector<arch::core_id> all(cfg.n_cores());
  std::iota(all.begin(), all.end(), 0);
  Barrier bar = Barrier::create(alloc, cfg, all);

  // Each core records the local time it reached/left the barrier.
  static std::vector<uint64_t> reach, leave;
  reach.assign(cfg.n_cores(), 0);
  leave.assign(cfg.n_cores(), 0);

  auto prog = [](Core& c, Barrier* b) -> Prog {
    // Unbalanced pre-work: core i works i*10 cycles.
    c.alu(1 + 10 * c.id);
    reach[c.id] = c.t;
    co_await sim::barrier_wait(c, *b);
    leave[c.id] = c.t;
  };
  std::vector<Machine::Launch> l;
  for (auto c : all) l.push_back({c, prog(m.core(c), &bar)});
  auto r = m.run_programs("barrier", std::move(l));

  const uint64_t last_reach = *std::max_element(reach.begin(), reach.end());
  for (auto c : all) EXPECT_GE(leave[c], last_reach);
  // Straggler imbalance shows up as WFI stalls.
  EXPECT_GT(r.stall[size_t(Stall::wfi)], 0u);
  // Barrier counter is reset for reuse.
  EXPECT_EQ(m.mem().peek(bar.counter_addr()), 0u);
}

// A barrier can be reused repeatedly (counter reset works).
TEST(Barrier, ReusableAcrossPhases) {
  Machine m(cfg16());
  arch::L1_alloc alloc(m.config());
  const auto& cfg = m.config();
  std::vector<arch::core_id> all(cfg.n_cores());
  std::iota(all.begin(), all.end(), 0);
  Barrier bar = Barrier::create(alloc, cfg, all);

  static std::vector<int> phase_count;
  phase_count.assign(cfg.n_cores(), 0);

  auto prog = [](Core& c, Barrier* b) -> Prog {
    for (int phase = 0; phase < 5; ++phase) {
      c.alu(1 + (c.id * 7 + phase * 13) % 23);
      co_await sim::barrier_wait(c, *b);
      ++phase_count[c.id];
    }
  };
  std::vector<Machine::Launch> l;
  for (auto c : all) l.push_back({c, prog(m.core(c), &bar)});
  m.run_programs("barrier5", std::move(l));
  for (auto c : all) EXPECT_EQ(phase_count[c], 5);
}

// Two disjoint subset barriers synchronize independently: a stalled group B
// must not block group A's progress.
TEST(Barrier, PartialBarriersAreIndependent) {
  Machine m(cfg16());
  arch::L1_alloc alloc(m.config());
  const auto& cfg = m.config();

  // Group A: tile 0 cores; group B: tile 1 cores.
  std::vector<arch::core_id> a, b;
  for (uint32_t i = 0; i < cfg.cores_per_tile; ++i) {
    a.push_back(i);
    b.push_back(cfg.cores_per_tile + i);
  }
  Barrier bar_a = Barrier::create(alloc, cfg, a);
  Barrier bar_b = Barrier::create(alloc, cfg, b);

  static uint64_t a_done, b_done;
  auto prog = [](Core& c, Barrier* bar, uint32_t work, uint64_t* done) -> Prog {
    for (int phase = 0; phase < 3; ++phase) {
      c.alu(work);
      co_await sim::barrier_wait(c, *bar);
    }
    *done = std::max(*done, c.t);
  };
  a_done = b_done = 0;
  std::vector<Machine::Launch> l;
  for (auto c : a) l.push_back({c, prog(m.core(c), &bar_a, 5, &a_done)});
  for (auto c : b) l.push_back({c, prog(m.core(c), &bar_b, 500, &b_done)});
  m.run_programs("partial", std::move(l));
  // Fast group A finished long before slow group B.
  EXPECT_LT(a_done, b_done / 2);
}

// Single-participant barrier is a no-op.
TEST(Barrier, SingleCoreBarrierIsFree) {
  Machine m(cfg16());
  arch::L1_alloc alloc(m.config());
  Barrier bar = Barrier::create(alloc, m.config(), {0});
  auto prog = [](Core& c, Barrier* b) -> Prog {
    co_await sim::barrier_wait(c, *b);
    co_await sim::barrier_wait(c, *b);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0), &bar)});
  auto r = m.run_programs("solo", std::move(l));
  EXPECT_EQ(r.instrs, 0u);
}

// Many concurrent tile-aligned barriers (one per tile) all complete; this is
// the pattern the replicated FFT/Cholesky kernels rely on.
TEST(Barrier, OneBarrierPerTile) {
  Machine m(cfg16());
  arch::L1_alloc alloc(m.config());
  const auto& cfg = m.config();

  std::vector<Barrier> bars;
  for (uint32_t tl = 0; tl < cfg.n_tiles(); ++tl) {
    std::vector<arch::core_id> cs;
    for (uint32_t i = 0; i < cfg.cores_per_tile; ++i) {
      cs.push_back(tl * cfg.cores_per_tile + i);
    }
    bars.push_back(Barrier::create(alloc, cfg, cs));
  }

  static uint32_t total_phases;
  total_phases = 0;
  auto prog = [](Core& c, Barrier* b) -> Prog {
    for (int phase = 0; phase < 4; ++phase) {
      c.alu(1 + (c.id % 5));
      co_await sim::barrier_wait(c, *b);
    }
    total_phases += 4;
  };
  std::vector<Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, prog(m.core(c), &bars[cfg.tile_of_core(c)])});
  }
  m.run_programs("per-tile", std::move(l));
  EXPECT_EQ(total_phases, cfg.n_cores() * 4);
}

// Tree (log) barrier: no core passes early, reusable across phases, and the
// arrival path is cheaper than the flat counter on a full cluster.
TEST(TreeBarrier, CorrectReusableAndFasterThanFlat) {
  // The log barrier pays extra levels, which only amortize at scale: use
  // the full MemPool configuration (flat arrival serializes 256 amos).
  const auto cfg = arch::Cluster_config::mempool();

  auto run_phases = [&](bool tree) {
    Machine m(cfg);
    arch::L1_alloc alloc(m.config());
    sim::Tree_barrier tbar = sim::Tree_barrier::create(alloc, cfg);
    std::vector<arch::core_id> all(cfg.n_cores());
    std::iota(all.begin(), all.end(), 0);
    Barrier fbar = Barrier::create(alloc, cfg, all);

    static std::vector<uint64_t> reach;
    static uint64_t last_reach;
    reach.assign(cfg.n_cores(), 0);
    last_reach = 0;

    struct Body {
      static sim::Prog prog(Core& c, sim::Tree_barrier* tb, Barrier* fb,
                            bool tree) {
        for (int ph = 0; ph < 4; ++ph) {
          c.alu(1 + 13 * (c.id % 5));
          reach[c.id] = c.t;
          last_reach = std::max(last_reach, c.t);
          if (tree) {
            co_await sim::tree_barrier_wait(c, *tb);
          } else {
            co_await sim::barrier_wait(c, *fb);
          }
          EXPECT_GE(c.t, reach[c.id]);
        }
      }
    };
    std::vector<Machine::Launch> l;
    for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
      l.push_back({c, Body::prog(m.core(c), &tbar, &fbar, tree)});
    }
    const auto r = m.run_programs(tree ? "tree" : "flat", std::move(l));
    // Nobody may leave the final barrier before the last arrival.
    return r.cycles;
  };

  const uint64_t tree_cycles = run_phases(true);
  const uint64_t flat_cycles = run_phases(false);
  EXPECT_LT(tree_cycles, flat_cycles);
}

// Hierarchical trigger cost: waking a whole group costs one CSR write while
// waking the same cores individually costs one write per core; the barrier
// epilogue is correspondingly cheaper.
TEST(Barrier, GroupTriggerCheaperThanPerCore) {
  const auto cfg = cfg16();
  const uint32_t cpg = cfg.tiles_per_group * cfg.cores_per_tile;
  std::vector<arch::core_id> g0(cpg);
  std::iota(g0.begin(), g0.end(), 0);

  const auto w_group = Wake_set::make(cfg, g0);
  EXPECT_EQ(w_group.n_csr_writes(), 1u);

  // Force per-core kind for comparison.
  Wake_set w_cores;
  w_cores.kind = Wake_set::Kind::cores;
  w_cores.cores = g0;
  EXPECT_EQ(w_cores.n_csr_writes(), cpg);
}

}  // namespace
