// End-to-end integration: the full simulated fixed-point PUSCH chain
// (FFT -> BF -> CHE -> NE -> MIMO) recovers the UEs' payloads, and its
// estimates agree with the double-precision golden receiver.
#include <gtest/gtest.h>

#include "phy/uplink.h"
#include "pusch/uplink_chain.h"

namespace {

using namespace pp;

phy::Uplink_config small_cfg() {
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;
  cfg.sigma2 = 1e-7;
  cfg.ue_power = 0.08;
  cfg.seed = 11;
  return cfg;
}

TEST(SimChain, RecoversPayloadAtHighSnr) {
  const phy::Uplink_scenario sc(small_cfg());
  const auto res =
      pusch::run_sim_uplink(sc, arch::Cluster_config::minipool());
  EXPECT_EQ(res.ber, 0.0) << "EVM " << res.evm;
  EXPECT_LT(res.evm, 0.25);
  // All six stages executed.
  ASSERT_EQ(res.stages.size(), 6u);
  for (const auto& st : res.stages) {
    EXPECT_GT(st.cycles, 0u) << st.name;
    EXPECT_GT(st.runs, 0u) << st.name;
  }
}

TEST(SimChain, AgreesWithGoldenReceiver) {
  const phy::Uplink_scenario sc(small_cfg());
  const auto golden = phy::golden_receive(sc);
  const auto simres =
      pusch::run_sim_uplink(sc, arch::Cluster_config::minipool());
  // Same recovered payloads at high SNR.
  for (uint32_t l = 0; l < sc.config().n_ue; ++l) {
    EXPECT_EQ(golden.bits[l], simres.bits[l]) << "UE " << l;
  }
  // Fixed-point EVM is worse than double EVM but bounded.
  EXPECT_GE(simres.evm, golden.evm * 0.5);
  EXPECT_LT(simres.evm, golden.evm + 0.25);
}

TEST(SimChain, FrontEndOutweighsEveryTailStage) {
  // At this reduced scale (4 antennas vs the paper's 64) the front end is
  // not >50% of the slot as in the full use case, but FFT+MMM must still
  // outweigh each estimation/MIMO stage individually.
  const phy::Uplink_scenario sc(small_cfg());
  const auto res =
      pusch::run_sim_uplink(sc, arch::Cluster_config::minipool());
  const uint64_t fe = res.stages[0].cycles + res.stages[1].cycles;
  for (size_t i = 2; i < res.stages.size(); ++i) {
    EXPECT_GT(fe, res.stages[i].cycles) << res.stages[i].name;
  }
}

TEST(SimChain, NoiseEstimateIsSane) {
  auto cfg = small_cfg();
  cfg.sigma2 = 1e-3;
  cfg.seed = 12;
  const phy::Uplink_scenario sc(cfg);
  const auto res =
      pusch::run_sim_uplink(sc, arch::Cluster_config::minipool());
  // Within an order of magnitude (quantization adds its own floor).
  EXPECT_GT(res.sigma2_hat, 1e-5);
  EXPECT_LT(res.sigma2_hat, 1e-1);
}

}  // namespace
