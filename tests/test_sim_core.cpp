// Unit tests for the simulated core: issue accounting, RAW stalls,
// divider/ext-unit stalls, LSU depth, and instruction-fetch behaviour.
#include <gtest/gtest.h>

#include "arch/address_map.h"
#include "sim/machine.h"

namespace {

using namespace pp;
using sim::Core;
using sim::Machine;
using sim::Prog;
using sim::Stall;
using sim::Tok;

arch::Cluster_config test_cfg() { return arch::Cluster_config::minipool(); }

// One core issuing n ALU ops takes n cycles (plus cold icache refills).
TEST(SimCore, AluCyclesAndInstrCount) {
  Machine m(test_cfg());
  auto prog = [](Core& c) -> Prog {
    c.alu(10);
    co_return;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0))});
  auto r = m.run_programs("alu", std::move(l));
  EXPECT_EQ(r.instrs, 10u);
  // 10 instruction cycles + cold L0 misses.
  EXPECT_EQ(r.cycles, r.instrs + r.stall[size_t(Stall::icache)]);
  EXPECT_GT(r.stall[size_t(Stall::icache)], 0u);
}

// A loop body that fits in L0 only pays fetch penalties on the first
// iteration.
TEST(SimCore, IcacheHitsAfterFirstIteration) {
  Machine m(test_cfg());
  auto prog = [](Core& c) -> Prog {
    for (int i = 0; i < 100; ++i) c.alu(4);
    co_return;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0))});
  auto r = m.run_programs("loop", std::move(l));
  EXPECT_EQ(r.instrs, 400u);
  const uint64_t icache = r.stall[size_t(Stall::icache)];
  // One cold line miss (4 instrs = 1 line), penalty = refill cycles.
  EXPECT_EQ(icache, test_cfg().icache_refill_cycles);
}

// mul result used immediately -> RAW stall of (mul_latency - 1).
TEST(SimCore, MulRawStall) {
  Machine m(test_cfg());
  auto prog = [](Core& c) -> Prog {
    const uint64_t p = c.mul();
    c.alu_use(1, p);  // consumer
    co_return;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0))});
  auto r = m.run_programs("mul", std::move(l));
  EXPECT_EQ(r.stall[size_t(Stall::raw)], test_cfg().mul_latency - 1);
}

// Back-to-back divides stall on the non-pipelined divider.
TEST(SimCore, DividerExtUnitStall) {
  Machine m(test_cfg());
  auto prog = [](Core& c) -> Prog {
    c.div();
    c.div();  // issues while the divider is busy
    co_return;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0))});
  auto r = m.run_programs("div", std::move(l));
  EXPECT_GE(r.stall[size_t(Stall::extunit)], test_cfg().div_latency - 1);
}

// Local load: token ready exactly 1 cycle after issue (no conflict).
TEST(SimCore, LocalLoadLatency) {
  Machine m(test_cfg());
  arch::L1_alloc alloc(m.config());
  const uint32_t row = alloc.alloc_rows(1);
  const arch::addr_t a = m.map().core_word(0, row, 0);
  m.mem().poke(a, 42);

  auto prog = [](Core& c, arch::addr_t addr) -> Prog {
    const Tok t0 = co_await c.load(addr);
    EXPECT_EQ(t0.value, 42u);
    // Issue cycle was c.t - 1; ready is +lat_tile after that.
    EXPECT_EQ(t0.ready, (c.t - 1) + c.cfg->lat_tile);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0), a)});
  m.run_programs("load", std::move(l));
}

// Load from a remote group costs lat_remote.
TEST(SimCore, RemoteLoadLatency) {
  Machine m(test_cfg());
  const auto& cfg = m.config();
  // A bank in the last tile of the last group, accessed by core 0.
  const arch::bank_id far_bank = cfg.n_banks() - 1;
  ASSERT_EQ(cfg.locality(0, far_bank), arch::Locality::remote);
  const arch::addr_t a = m.map().bank_word(far_bank, 5);
  m.mem().poke(a, 7);

  auto prog = [](Core& c, arch::addr_t addr) -> Prog {
    const Tok t = co_await c.load(addr);
    EXPECT_EQ(t.value, 7u);
    EXPECT_EQ(t.ready, (c.t - 1) + c.cfg->lat_remote);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0), a)});
  m.run_programs("remote", std::move(l));
}

// Same-group (non-local tile) load costs lat_group.
TEST(SimCore, GroupLoadLatency) {
  Machine m(test_cfg());
  const auto& cfg = m.config();
  // Bank in tile 1 (same group as core 0's tile 0).
  const arch::bank_id b = cfg.banks_per_tile();
  ASSERT_EQ(cfg.locality(0, b), arch::Locality::group);
  const arch::addr_t a = m.map().bank_word(b, 0);

  auto prog = [](Core& c, arch::addr_t addr) -> Prog {
    const Tok t = co_await c.load(addr);
    EXPECT_EQ(t.ready, (c.t - 1) + c.cfg->lat_group);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0), a)});
  m.run_programs("group", std::move(l));
}

// Two cores of the same tile hitting the same bank on the same cycle:
// the second is served one cycle later.
TEST(SimCore, BankConflictSerializes) {
  Machine m(test_cfg());
  arch::L1_alloc alloc(m.config());
  const uint32_t row = alloc.alloc_rows(1);
  const arch::addr_t a = m.map().core_word(0, row, 0);

  static uint64_t ready0, ready1;
  auto prog = [](Core& c, arch::addr_t addr, uint64_t* out) -> Prog {
    const Tok t = co_await c.load(addr);
    *out = t.ready;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, prog(m.core(0), a, &ready0)});
  l.push_back({1, prog(m.core(1), a, &ready1)});
  m.run_programs("conflict", std::move(l));
  EXPECT_EQ(ready1, ready0 + 1);  // serialized at the bank
}

// Hammering a single bank backs transactions up until the LSU queue is full
// and the core stalls; without conflicts (distinct banks) it never does.
TEST(SimCore, LsuDepthBackPressure) {
  auto cfg = test_cfg();

  auto hammer = [](Core& c, bool same_bank, uint32_t n) -> Prog {
    const auto& map = c.machine->map();
    const uint32_t bpt = c.cfg->banks_per_tile();
    for (uint32_t i = 0; i < n; ++i) {
      // Conflicting case: one remote bank; conflict-free: spread over banks.
      co_await c.load(map.bank_word(same_bank ? bpt : bpt + i, i));
    }
  };

  // Four cores hammering one bank: the bank serves 1/cycle, the cores issue
  // 4/cycle, so per-core completions lag and the 8-deep queues fill up.
  Machine m_conflict(cfg);
  std::vector<Machine::Launch> l1;
  for (arch::core_id c = 0; c < 4; ++c) {
    l1.push_back({c, hammer(m_conflict.core(c), true, 8 * cfg.lsu_depth)});
  }
  auto r1 = m_conflict.run_programs("lsu-conflict", std::move(l1));
  EXPECT_GT(r1.stall[size_t(sim::Stall::lsu)], 0u);

  Machine m_free(cfg);
  std::vector<Machine::Launch> l2;
  l2.push_back({0, hammer(m_free.core(0), false, cfg.lsu_depth)});
  auto r2 = m_free.run_programs("lsu-free", std::move(l2));
  EXPECT_EQ(r2.stall[size_t(sim::Stall::lsu)], 0u);
}

// Store then load from another core (sequenced by cycle) sees the value.
TEST(SimCore, StoreVisibleToLaterLoad) {
  Machine m(test_cfg());
  arch::L1_alloc alloc(m.config());
  const arch::addr_t a = alloc.alloc(1);

  auto writer = [](Core& c, arch::addr_t addr) -> Prog {
    co_await c.store(addr, 0xabcd);
  };
  auto reader = [](Core& c, arch::addr_t addr) -> Prog {
    c.alu(50);  // start well after the store
    const Tok t = co_await c.load(addr);
    EXPECT_EQ(t.value, 0xabcdu);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, writer(m.core(0), a)});
  l.push_back({1, reader(m.core(1), a)});
  m.run_programs("st-ld", std::move(l));
}

// amo_add returns the old value and accumulates atomically.
TEST(SimCore, AmoAddAtomicity) {
  Machine m(test_cfg());
  arch::L1_alloc alloc(m.config());
  const arch::addr_t a = alloc.alloc(1);
  const auto& cfg = m.config();

  static std::vector<uint32_t> observed;
  observed.clear();
  auto prog = [](Core& c, arch::addr_t addr) -> Prog {
    const Tok t = co_await c.amo_add(addr, 1);
    observed.push_back(t.value);
  };
  std::vector<Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, prog(m.core(c), a)});
  }
  m.run_programs("amo", std::move(l));
  EXPECT_EQ(m.mem().peek(a), cfg.n_cores());
  // All old values distinct, i.e. a permutation of 0..n-1.
  std::sort(observed.begin(), observed.end());
  for (uint32_t i = 0; i < cfg.n_cores(); ++i) EXPECT_EQ(observed[i], i);
}

// Sub-programs run on the awaiting core with correct accounting.
TEST(SimCore, NestedSubPrograms) {
  Machine m(test_cfg());
  auto leaf = [](Core& c) -> Prog {
    c.alu(5);
    co_return;
  };
  auto top = [&](Core& c) -> Prog {
    c.alu(1);
    co_await leaf(c);
    c.alu(1);
    co_await leaf(c);
    co_return;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, top(m.core(0))});
  auto r = m.run_programs("nested", std::move(l));
  EXPECT_EQ(r.instrs, 12u);
}

// Cycle attribution is conserved: instr + stalls == cores * cycles.
TEST(SimCore, AttributionConserved) {
  Machine m(test_cfg());
  arch::L1_alloc alloc(m.config());
  const arch::addr_t a = alloc.alloc(64);

  auto prog = [](Core& c, arch::addr_t base) -> Prog {
    for (uint32_t i = 0; i < 20; ++i) {
      const Tok t = co_await c.load(base + i);
      const uint64_t p = c.mul(t.ready);
      co_await c.store(base + i, t.value + 1, p);
    }
  };
  std::vector<Machine::Launch> l;
  for (arch::core_id c = 0; c < 4; ++c) l.push_back({c, prog(m.core(c), a)});
  auto r = m.run_programs("conserve", std::move(l));
  uint64_t total = r.instrs;
  for (auto s : r.stall) total += s;
  EXPECT_EQ(total, r.core_cycles());
}

}  // namespace
