// Cycle-exact differential suite for the simulator fast path.
//
// The fast scheduler (event batching, inline sync grants, bank-ownership
// runs, the far-event queue - machine.h) must not change a single reported
// number relative to the reference event loop that processes every event
// through the ring.  These tests run every kernel of the use-case roll-up
// and the full functional uplink chain both ways and assert cycles, IPC,
// per-kernel stall fractions and recovered payload bits are bit-identical,
// across the mempool/minipool/terapool presets and 1/2/8 sim shards
// (docs/DETERMINISM.md §5).
//
// The reference loop is reached two ways on purpose: Measure_options::
// reference_loop for the roll-up engine, and the SIM_REFERENCE_LOOP
// environment variable (read at Machine construction) for the functional
// backend - the latter is how a differential CI run flips a whole binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <type_traits>

#include "phy/uplink.h"
#include "runtime/backend.h"
#include "runtime/presets.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;
using runtime::Measure_options;
using runtime::Rollup_result;
using runtime::Slot_result;

// ---- roll-up differential: every kernel, fast vs reference ---------------

void expect_rollup_equal(const Rollup_result& a, const Rollup_result& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t i = 0; i < a.stages.size(); ++i) {
    const auto& x = a.stages[i];
    const auto& y = b.stages[i];
    SCOPED_TRACE(x.name);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.rep.cycles, y.rep.cycles);
    EXPECT_EQ(x.rep.instrs, y.rep.instrs);
    EXPECT_EQ(x.rep.n_cores, y.rep.n_cores);
    EXPECT_EQ(x.times, y.times);
    for (size_t k = 0; k < sim::n_stall_kinds; ++k) {
      EXPECT_EQ(x.rep.stall[k], y.rep.stall[k])
          << stall_name(static_cast<sim::Stall>(k));
    }
    // IPC and the stall fractions are pure functions of the integers above,
    // asserted separately because they are the paper-facing metrics.
    EXPECT_EQ(x.rep.ipc(), y.rep.ipc());
    for (size_t k = 0; k < sim::n_stall_kinds; ++k) {
      EXPECT_EQ(x.rep.frac(static_cast<sim::Stall>(k)),
                y.rep.frac(static_cast<sim::Stall>(k)));
    }
  }
  EXPECT_EQ(a.parallel_cycles, b.parallel_cycles);
  EXPECT_EQ(a.serial_cycles, b.serial_cycles);
}

// Use-case pipeline with estimation rows: FFT, MMM, Cholesky, triangular
// solves, CHE, NE and the Gramian - every registry kernel the chain uses -
// plus the single-core serial baselines.
Rollup_result measure_use_case(const arch::Cluster_config& cluster,
                               const pusch::Pusch_dims& dims, bool reference,
                               uint32_t shards) {
  runtime::Use_case_options uopt;
  uopt.cluster = cluster;
  uopt.dims = dims;
  uopt.include_estimation = true;
  Measure_options mopt;
  mopt.reference_loop = reference;
  mopt.reuse_reports = false;  // measure for real, both times
  mopt.shards = shards;
  return runtime::use_case_pipeline(uopt).measure(mopt);
}

// Reduced dims that fit the small clusters' SRAM (the paper-scale default
// needs TeraPool's 16 MiB L1).
pusch::Pusch_dims small_dims(uint32_t fft) {
  pusch::Pusch_dims d;
  d.fft_size = fft;
  d.n_sc = fft;
  d.n_symb = 4;
  d.n_pilot_symb = 2;
  d.n_rx = 4;
  d.n_beams = 4;
  d.n_ue = 2;
  return d;
}

TEST(SimDifferential, MinipoolRollupMatchesReferenceLoop) {
  const auto cluster = arch::Cluster_config::minipool();
  expect_rollup_equal(measure_use_case(cluster, small_dims(64), false, 1),
                      measure_use_case(cluster, small_dims(64), true, 1));
}

TEST(SimDifferential, MempoolRollupMatchesReferenceLoop) {
  const auto cluster = arch::Cluster_config::mempool();
  expect_rollup_equal(measure_use_case(cluster, small_dims(256), false, 1),
                      measure_use_case(cluster, small_dims(256), true, 1));
}

TEST(SimDifferential, TerapoolRollupMatchesReferenceLoop) {
  // Full paper-scale dims: 64x 4096-pt FFT, 4096x64x32 MMM, 4096 4x4
  // Cholesky - the config the quick baseline gates.
  const auto cluster = arch::Cluster_config::terapool();
  expect_rollup_equal(measure_use_case(cluster, {}, false, 1),
                      measure_use_case(cluster, {}, true, 1));
}

TEST(SimDifferential, RollupInvariantAcrossShardCounts) {
  const auto cluster = arch::Cluster_config::mempool();
  const auto one = measure_use_case(cluster, small_dims(256), false, 1);
  expect_rollup_equal(one, measure_use_case(cluster, small_dims(256), false, 2));
  expect_rollup_equal(one, measure_use_case(cluster, small_dims(256), false, 8));
}

TEST(SimDifferential, RollupInvariantUnderReportMemoization) {
  runtime::Use_case_options uopt;
  uopt.cluster = arch::Cluster_config::minipool();
  uopt.dims = small_dims(64);
  uopt.include_estimation = true;
  const auto pipeline = runtime::use_case_pipeline(uopt);
  Measure_options fresh;
  fresh.reuse_reports = false;
  Measure_options memo;
  memo.reuse_reports = true;
  const auto cold = pipeline.measure(memo);  // populates the process cache
  expect_rollup_equal(cold, pipeline.measure(memo));   // served from cache
  expect_rollup_equal(cold, pipeline.measure(fresh));  // measured again
}

// ---- functional uplink chain: fast vs SIM_REFERENCE_LOOP=1 ---------------

void expect_slot_equal(const Slot_result& a, const Slot_result& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t i = 0; i < a.stages.size(); ++i) {
    SCOPED_TRACE(a.stages[i].name);
    EXPECT_EQ(a.stages[i].name, b.stages[i].name);
    EXPECT_EQ(a.stages[i].cycles, b.stages[i].cycles);
    EXPECT_EQ(a.stages[i].instrs, b.stages[i].instrs);
    EXPECT_EQ(a.stages[i].runs, b.stages[i].runs);
    for (size_t k = 0; k < sim::n_stall_kinds; ++k) {
      EXPECT_EQ(a.stages[i].stall[k], b.stages[i].stall[k])
          << stall_name(static_cast<sim::Stall>(k));
    }
  }
  ASSERT_EQ(a.bits.size(), b.bits.size());
  for (size_t l = 0; l < a.bits.size(); ++l) {
    EXPECT_EQ(a.bits[l], b.bits[l]) << "UE " << l;
  }
  EXPECT_EQ(a.evm, b.evm);
  EXPECT_EQ(a.ber, b.ber);
  EXPECT_EQ(a.sigma2_hat, b.sigma2_hat);
}

phy::Uplink_config chain_cfg(uint32_t fft) {
  phy::Uplink_config cfg;
  cfg.n_sc = fft;
  cfg.fft_size = fft;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;
  cfg.sigma2 = 1e-7;
  cfg.ue_power = 0.08;
  cfg.seed = 23;
  return cfg;
}

// One slot through the sim backend; `reference` flips the environment knob
// the way a differential CI build would (the Machine reads it at
// construction, inside Backend::run_slot).
Slot_result run_chain(const arch::Cluster_config& cluster, uint32_t fft,
                      bool reference) {
  if (reference) {
    setenv("SIM_REFERENCE_LOOP", "1", 1);
  } else {
    unsetenv("SIM_REFERENCE_LOOP");
  }
  const auto pipeline = runtime::uplink_pipeline(cluster);
  const phy::Uplink_scenario sc(chain_cfg(fft));
  const auto backend = runtime::make_backend("sim", 1);
  Slot_result out = pipeline.execute(sc, *backend);
  unsetenv("SIM_REFERENCE_LOOP");
  return out;
}

TEST(SimDifferential, UplinkChainMinipoolMatchesReferenceLoop) {
  const auto cluster = arch::Cluster_config::minipool();
  const auto fast = run_chain(cluster, 64, false);
  const auto ref = run_chain(cluster, 64, true);
  expect_slot_equal(fast, ref);
  EXPECT_EQ(fast.ber, 0.0);  // the chain actually recovered the payload
}

TEST(SimDifferential, UplinkChainMempoolMatchesReferenceLoop) {
  const auto cluster = arch::Cluster_config::mempool();
  expect_slot_equal(run_chain(cluster, 256, false),
                    run_chain(cluster, 256, true));
}

// ---- sim shards: slot-level host threading is invisible ------------------

runtime::Sweep_result sweep_with_shards(uint32_t sim_shards) {
  runtime::Sweep_grid grid;
  grid.fft_sizes = {64};
  grid.ue_counts = {2};
  grid.qam_orders = {phy::Qam::qam16};
  grid.snr_db = {20.0, 30.0};
  grid.slots_per_point = 2;
  grid.base_seed = 7;
  runtime::Sweep_options opt;
  opt.backend = "sim";
  opt.cluster = arch::Cluster_config::minipool();
  opt.sim_shards = sim_shards;
  opt.keep_slots = true;
  return runtime::Sweep_runner(opt).run(grid);
}

TEST(SimDifferential, SweepInvariantAcrossSimShards) {
  const auto one = sweep_with_shards(1);
  ASSERT_EQ(one.slots.size(), 4u);
  for (const uint32_t shards : {2u, 8u}) {
    SCOPED_TRACE(shards);
    const auto sharded = sweep_with_shards(shards);
    ASSERT_EQ(sharded.slots.size(), one.slots.size());
    for (size_t i = 0; i < one.slots.size(); ++i) {
      SCOPED_TRACE(i);
      expect_slot_equal(one.slots[i], sharded.slots[i]);
    }
    ASSERT_EQ(sharded.points.size(), one.points.size());
    for (size_t p = 0; p < one.points.size(); ++p) {
      EXPECT_EQ(one.points[p].cycles, sharded.points[p].cycles);
      EXPECT_EQ(one.points[p].evm, sharded.points[p].evm);
      EXPECT_EQ(one.points[p].ber, sharded.points[p].ber);
    }
    EXPECT_EQ(one.total_cycles, sharded.total_cycles);
  }
}

// ---- counter width: TeraPool-length traces must not wrap -----------------

TEST(SimDifferential, StallAccumulatorsSurviveTeraPoolTraceLengths) {
  // A sustained TeraPool serve trace parks 1024 cores in WFI for most of
  // every slot: one slot alone contributes ~1e8-1e9 WFI cycles to its
  // stage accumulator, so a u32 wraps within seconds of simulated traffic.
  // Pin the width and prove the arithmetic a u32 would get wrong.
  static_assert(
      std::is_same_v<decltype(Slot_result::Stage{}.stall)::value_type,
                     uint64_t>,
      "per-stage stall accumulators must be 64-bit");
  static_assert(
      std::is_same_v<decltype(sim::Kernel_report{}.stall)::value_type,
                     uint64_t>,
      "kernel-report stall counters must be 64-bit");

  Slot_result::Stage st;
  sim::Kernel_report rep;
  const uint64_t per_launch = uint64_t{3} << 30;  // ~3.2e9 WFI core-cycles
  rep.stall[static_cast<size_t>(sim::Stall::wfi)] = per_launch;
  // Accumulate exactly as Sim_backend does per kernel launch.
  for (int launch = 0; launch < 4; ++launch) {
    st.cycles += rep.cycles;
    st.instrs += rep.instrs;
    for (size_t k = 0; k < sim::n_stall_kinds; ++k) {
      st.stall[k] += rep.stall[k];
    }
    ++st.runs;
  }
  const uint64_t wfi = st.stall[static_cast<size_t>(sim::Stall::wfi)];
  EXPECT_EQ(wfi, 4 * per_launch);
  EXPECT_GT(wfi, uint64_t{UINT32_MAX})
      << "a 32-bit accumulator would have wrapped here";
  EXPECT_NE(wfi, (4 * per_launch) & 0xffffffffull)
      << "value is indistinguishable from the wrapped u32 sum";
}

}  // namespace
