// Edge cases and failure injection: barrier deadlock detection, allocator
// exhaustion, wake-before-WFI races, and selective wake-up semantics.
#include <gtest/gtest.h>

#include "sim/barrier.h"
#include "sim/machine.h"

namespace {

using namespace pp;
using sim::Core;
using sim::Machine;
using sim::Prog;
using sim::Tok;
using sim::Wake_set;

arch::Cluster_config cfg16() { return arch::Cluster_config::minipool(); }

// A core sleeping with nobody to wake it is a deadlock; the machine aborts
// with a diagnostic instead of hanging.
TEST(SimEdgeDeathTest, DeadlockIsDetected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Machine m(cfg16());
        auto prog = [](Core& c) -> Prog { co_await c.wfi(); };
        std::vector<Machine::Launch> l;
        l.push_back({0, prog(m.core(0))});
        m.run_programs("deadlock", std::move(l));
      },
      "deadlock");
}

// Barrier participant count mismatch (a core missing) also deadlocks.
TEST(SimEdgeDeathTest, MissingBarrierParticipantDeadlocks) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Machine m(cfg16());
        arch::L1_alloc alloc(m.config());
        sim::Barrier bar = sim::Barrier::create(alloc, m.config(), {0, 1, 2});
        auto prog = [](Core& c, sim::Barrier* b) -> Prog {
          co_await sim::barrier_wait(c, *b);
        };
        std::vector<Machine::Launch> l;
        l.push_back({0, prog(m.core(0), &bar)});
        l.push_back({1, prog(m.core(1), &bar)});
        // core 2 never arrives
        m.run_programs("mismatch", std::move(l));
      },
      "deadlock");
}

TEST(SimEdgeDeathTest, L1OverflowIsCaught) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        arch::L1_alloc alloc(cfg16());
        alloc.alloc(cfg16().l1_words() + 1);
      },
      "SRAM");
}

// A wake-up trigger that fires while the target is still running must be
// latched: the next WFI falls through instead of sleeping forever.
TEST(SimEdge, WakeBeforeWfiIsLatched) {
  Machine m(cfg16());

  auto waker = [](Core& c) -> Prog {
    Wake_set w;
    w.kind = Wake_set::Kind::cores;
    w.cores = {1};
    c.csr_wake(w);  // fires at ~cycle wakeup_latency
    co_return;
  };
  auto sleeper = [](Core& c) -> Prog {
    c.alu(200);        // still busy when the trigger fires
    co_await c.wfi();  // must fall through (latched wake)
    c.alu(1);
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, waker(m.core(0))});
  l.push_back({1, sleeper(m.core(1))});
  // Completes without deadlock.
  const auto r = m.run_programs("latched", std::move(l));
  EXPECT_GT(r.instrs, 200u);
}

// Selective wake-up only releases the targeted core.
TEST(SimEdge, SelectiveWakeTargetsOneCore) {
  Machine m(cfg16());

  static uint64_t woke_at_1, woke_at_2;
  auto waker = [](Core& c) -> Prog {
    c.alu(50);
    Wake_set w1;
    w1.kind = Wake_set::Kind::cores;
    w1.cores = {1};
    c.csr_wake(w1);
    c.alu(300);
    Wake_set w2;
    w2.kind = Wake_set::Kind::cores;
    w2.cores = {2};
    c.csr_wake(w2);
    co_return;
  };
  auto sleeper = [](Core& c, uint64_t* out) -> Prog {
    co_await c.wfi();
    *out = c.t;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, waker(m.core(0))});
  l.push_back({1, sleeper(m.core(1), &woke_at_1)});
  l.push_back({2, sleeper(m.core(2), &woke_at_2)});
  m.run_programs("selective", std::move(l));
  // Core 1 released long before core 2.
  EXPECT_LT(woke_at_1 + 250, woke_at_2);
}

// Group-granularity wake releases exactly the group's cores.
TEST(SimEdge, GroupWakeReleasesWholeGroup) {
  const auto cfg = cfg16();
  Machine m(cfg);
  const uint32_t cpg = cfg.tiles_per_group * cfg.cores_per_tile;

  static std::vector<int> woke;
  woke.assign(cfg.n_cores(), 0);

  auto waker = [](Core& c) -> Prog {
    c.alu(100);
    Wake_set w;
    w.kind = Wake_set::Kind::groups;
    w.group_mask = 0b10;  // group 1 only
    c.csr_wake(w);
    co_return;
  };
  auto sleeper = [](Core& c) -> Prog {
    co_await c.wfi();
    woke[c.id] = 1;
  };
  std::vector<Machine::Launch> l;
  l.push_back({0, waker(m.core(0))});
  for (arch::core_id c = cpg; c < 2 * cpg; ++c) {
    l.push_back({c, sleeper(m.core(c))});
  }
  m.run_programs("group-wake", std::move(l));
  for (arch::core_id c = cpg; c < 2 * cpg; ++c) EXPECT_EQ(woke[c], 1);
}

// Back-to-back kernels on one machine keep a consistent timeline: the
// second report starts where the first ended.
TEST(SimEdge, SequentialKernelsShareTimeline) {
  Machine m(cfg16());
  auto prog = [](Core& c) -> Prog {
    c.alu(100);
    co_return;
  };
  std::vector<Machine::Launch> l1, l2;
  l1.push_back({0, prog(m.core(0))});
  const uint64_t t0 = m.now();
  m.run_programs("first", std::move(l1));
  const uint64_t t1 = m.now();
  l2.push_back({0, prog(m.core(0))});
  m.run_programs("second", std::move(l2));
  const uint64_t t2 = m.now();
  EXPECT_GE(t1, t0 + 100);
  EXPECT_GE(t2, t1 + 100);
}

}  // namespace
