// Seeded property fuzz for the simulator's fast path.
//
// Random op/load/store/amo/WFI-barrier sequences run through sim::Machine
// twice - once on the batching fast path, once with the reference event
// loop (set_reference_loop(true), the same engine SIM_REFERENCE_LOOP=1
// selects) - and every observable must match bit for bit: cycles, instrs,
// the per-kind stall breakdown and the final L1 contents (service order is
// functionally visible through conflicting stores and amo chains, so memory
// equality is an order check, not just a value check).  Per-core virtual
// clocks are asserted monotone inside the programs themselves.
//
// Programs are pure functions of a seed via common::Rng::derive_seed
// streams, so every case reproduces from its printed seed.  Three seeds are
// pinned as named regression cases, one per tricky scheduler shape: the
// shared-bank tie chains of the sync-grant paths, the bank-ownership inline
// runs of the folded-layout contract, and launches long enough to push the
// closing-barrier events past the ring horizon into the far-event queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/address_map.h"
#include "common/rng.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace {

using namespace pp;
using sim::Barrier;
using sim::Core;
using sim::Machine;
using sim::Prog;
using sim::Tok;

// ---- random program plans -------------------------------------------------

struct Op {
  enum Kind : uint8_t { alu, mul_use, div, load, store, amo, barrier };
  Kind kind = alu;
  uint32_t a = 0;        // alu width / stored value
  arch::addr_t addr = 0;
};

struct Plan {
  uint64_t seed = 0;
  bool core_local = false;  // ownership mode: each core stays in its banks
  std::vector<std::vector<Op>> ops;  // per core
  uint64_t region_words = 0;         // shared interleaved region (peeked)
};

// Shared-bank mode: every core draws ops over one interleaved region, so
// loads, stores and amo chains conflict across cores and the service order
// (the thing batching must not change) decides the final memory image.
Plan make_shared_plan(const arch::Cluster_config& cfg, uint64_t seed,
                      uint32_t ops_per_core) {
  Plan plan;
  plan.seed = seed;
  plan.region_words = uint64_t{4} * cfg.n_banks();
  plan.ops.resize(cfg.n_cores());
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    common::Rng rng(common::Rng::derive_seed(seed, c));
    // Phase boundaries land at different per-core offsets on purpose; the
    // barrier count per core must still agree, so phases split evenly.
    const uint32_t phases = 1 + static_cast<uint32_t>(seed % 3);
    for (uint32_t p = 0; p < phases; ++p) {
      const uint32_t n = ops_per_core / phases + rng.uniform_int(8);
      for (uint32_t i = 0; i < n; ++i) {
        Op op;
        const uint32_t addr = rng.uniform_int(static_cast<uint32_t>(plan.region_words));
        switch (rng.uniform_int(6)) {
          case 0: op = {Op::alu, 1 + rng.uniform_int(8), 0}; break;
          case 1: op = {Op::mul_use, 0, 0}; break;
          case 2: op = {Op::div, 0, 0}; break;
          case 3: op = {Op::load, 0, addr}; break;
          case 4: op = {Op::store, rng.next_u32(), addr}; break;
          default: op = {Op::amo, 0, addr}; break;
        }
        plan.ops[c].push_back(op);
      }
      plan.ops[c].push_back({Op::barrier, 0, 0});
    }
  }
  return plan;
}

// Ownership mode: the folded-layout contract (machine.h set_bank_owner) -
// every core touches only its own local banks until one closing barrier,
// and (per the contract) the per-core timing is identical: all cores run
// the same op stream against their own banks, so every barrier arrival
// lands on the same cycle and the service order is the same-cycle tie
// chain the Cholesky kernels hit.  `target_cycles` sizes the straight-line
// run; above the ring horizon (32768 cycles) the non-master barrier
// arrivals park in the far-event queue, which is exactly the path worth
// fuzzing.
Plan make_local_plan(const arch::Cluster_config& cfg, uint64_t seed,
                     uint32_t target_cycles, uint32_t scratch_rows) {
  Plan plan;
  plan.seed = seed;
  plan.core_local = true;
  const uint32_t scratch_words = scratch_rows * cfg.banks_per_core;
  common::Rng rng(common::Rng::derive_seed(seed, 0));
  std::vector<Op> ops;
  uint64_t cost = 0;
  while (cost < target_cycles) {
    Op op;
    const uint32_t s = rng.uniform_int(scratch_words);
    switch (rng.uniform_int(5)) {
      case 0: op = {Op::alu, 1 + rng.uniform_int(16), 0}; break;
      case 1: op = {Op::mul_use, 0, 0}; break;
      case 2: op = {Op::div, 0, 0}; break;
      case 3: op = {Op::load, 0, s}; break;  // resolved to core_word below
      default: op = {Op::store, rng.next_u32(), s}; break;
    }
    cost += op.kind == Op::alu ? op.a : 4;  // rough cycles, sizing only
    ops.push_back(op);
  }
  ops.push_back({Op::barrier, 0, 0});
  plan.ops.assign(cfg.n_cores(), ops);
  return plan;
}

// ---- execution ------------------------------------------------------------

Prog run_ops(Core& c, const std::vector<Op>* ops, const Barrier* bar,
             const arch::Address_map* map, uint32_t base_row,
             arch::addr_t region_base, bool core_local) {
  uint64_t prev = c.t;
  for (const Op& op : *ops) {
    // Plans carry region-relative offsets (the allocator runs per machine);
    // resolve against this machine's layout here.
    const arch::addr_t addr = core_local
                                  ? map->core_word(c.id, base_row, op.addr)
                                  : region_base + op.addr;
    switch (op.kind) {
      case Op::alu:
        c.alu(op.a);
        break;
      case Op::mul_use: {
        const uint64_t p = c.mul();
        c.alu_use(1, p);
        break;
      }
      case Op::div:
        c.div();
        break;
      case Op::load: {
        const Tok t = co_await c.load(addr);
        EXPECT_GE(t.ready, prev) << "token ready before its issue";
        break;
      }
      case Op::store:
        co_await c.store(addr, op.a);
        break;
      case Op::amo:
        co_await c.amo_add(addr, 1);
        break;
      case Op::barrier:
        co_await barrier_wait(c, *bar);
        break;
    }
    EXPECT_GE(c.t, prev) << "virtual clock went backwards";
    prev = c.t;
  }
}

struct Fuzz_run {
  sim::Kernel_report rep;
  std::vector<uint32_t> mem;  // final L1 words of the active region
};

Fuzz_run run_plan(const arch::Cluster_config& cfg, const Plan& plan,
                  bool reference) {
  Machine m(cfg);
  m.set_reference_loop(reference);
  arch::L1_alloc alloc(m.config());

  std::vector<arch::core_id> all(cfg.n_cores());
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) all[c] = c;
  Barrier bar = Barrier::create(alloc, cfg, all);

  arch::addr_t region = 0;
  uint32_t base_row = 0;
  const uint32_t scratch_rows = 4;
  if (plan.core_local) {
    base_row = alloc.alloc_rows(scratch_rows);
    // The folded-layout declaration (counter bank included for the master,
    // which Barrier::create placed in core 0's first local bank).
    for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
      for (uint32_t k = 0; k < cfg.banks_per_core; ++k) {
        m.set_bank_owner(cfg.first_local_bank(c) + k, c);
      }
    }
  } else {
    region = alloc.alloc(plan.region_words);
  }

  std::vector<Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, run_ops(m.core(c), &plan.ops[c], &bar, &m.map(), base_row,
                            region, plan.core_local)});
  }
  Fuzz_run out;
  out.rep = m.run_programs("fuzz", std::move(l));

  const uint64_t words = plan.core_local
                             ? uint64_t{scratch_rows + 1} * cfg.n_banks()
                             : plan.region_words;
  const arch::addr_t base = plan.core_local ? 0 : region;
  out.mem.resize(words);
  for (uint64_t w = 0; w < words; ++w) {
    out.mem[w] = m.mem().peek(base + static_cast<arch::addr_t>(w));
  }
  return out;
}

void expect_identical(const Fuzz_run& fast, const Fuzz_run& ref,
                      uint64_t seed) {
  EXPECT_EQ(fast.rep.cycles, ref.rep.cycles) << "seed " << seed;
  EXPECT_EQ(fast.rep.instrs, ref.rep.instrs) << "seed " << seed;
  EXPECT_EQ(fast.rep.n_cores, ref.rep.n_cores) << "seed " << seed;
  for (size_t k = 0; k < sim::n_stall_kinds; ++k) {
    EXPECT_EQ(fast.rep.stall[k], ref.rep.stall[k])
        << "seed " << seed << " " << stall_name(static_cast<sim::Stall>(k));
  }
  EXPECT_EQ(fast.mem, ref.mem) << "seed " << seed;
}

arch::Cluster_config fuzz_cfg() { return arch::Cluster_config::minipool(); }

// ---- the property, over fresh seeds --------------------------------------

TEST(SimFuzz, SharedBankSequencesMatchReferenceLoop) {
  const auto cfg = fuzz_cfg();
  for (uint64_t i = 0; i < 6; ++i) {
    const uint64_t seed = common::Rng::derive_seed(0xf022, i);
    const Plan plan = make_shared_plan(cfg, seed, 160);
    expect_identical(run_plan(cfg, plan, false), run_plan(cfg, plan, true),
                     seed);
  }
}

TEST(SimFuzz, OwnedBankSequencesMatchReferenceLoop) {
  const auto cfg = fuzz_cfg();
  for (uint64_t i = 0; i < 3; ++i) {
    const uint64_t seed = common::Rng::derive_seed(0xfacade, i);
    const Plan plan = make_local_plan(cfg, seed, 2000, 4);
    expect_identical(run_plan(cfg, plan, false), run_plan(cfg, plan, true),
                     seed);
  }
}

TEST(SimFuzz, SameSeedIsBitwiseRepeatable) {
  const auto cfg = fuzz_cfg();
  const Plan plan = make_shared_plan(cfg, 2023, 160);
  const Fuzz_run a = run_plan(cfg, plan, false);
  const Fuzz_run b = run_plan(cfg, plan, false);
  EXPECT_EQ(a.rep.cycles, b.rep.cycles);
  EXPECT_EQ(a.rep.instrs, b.rep.instrs);
  EXPECT_EQ(a.mem, b.mem);
}

// ---- pinned regression seeds ----------------------------------------------

// Same-cycle amo/store tie chains across all sync-grant paths: bucket
// insertion order is observable through bank-epoch chaining, so a fast path
// that parks events out of launch order diverges here.
TEST(SimFuzz, RegressionSeedSyncGrantTieChains) {
  const auto cfg = fuzz_cfg();
  const uint64_t seed = common::Rng::derive_seed(0x7ea, 0);
  const Plan plan = make_shared_plan(cfg, seed, 320);
  expect_identical(run_plan(cfg, plan, false), run_plan(cfg, plan, true),
                   seed);
}

// The bank-ownership inline path at Cholesky-like scale: whole per-core
// runs serviced without touching the ring, closed by one barrier
// whose master owns the counter bank (the waker-identity case the chol
// kernels hit).
TEST(SimFuzz, RegressionSeedOwnershipInlineRuns) {
  const auto cfg = fuzz_cfg();
  const uint64_t seed = common::Rng::derive_seed(0xc401, 1);
  const Plan plan = make_local_plan(cfg, seed, 4000, 4);
  expect_identical(run_plan(cfg, plan, false), run_plan(cfg, plan, true),
                   seed);
}

// Inline runs past the 32768-cycle ring horizon: the closing-barrier events
// of the non-master cores land in the far-event queue and must flush back
// in insertion order.
TEST(SimFuzz, RegressionSeedFarEventQueue) {
  const auto cfg = fuzz_cfg();
  const uint64_t seed = common::Rng::derive_seed(0xfa2, 2);
  const Plan plan = make_local_plan(cfg, seed, 45000, 4);
  expect_identical(run_plan(cfg, plan, false), run_plan(cfg, plan, true),
                   seed);
}

}  // namespace
