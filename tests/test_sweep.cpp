// Sweep engine determinism and aggregation tests.
//
// The load-bearing guarantee: a slot's result is a pure function of
// (grid, slot_index) — seeds derive from (base_seed, slot_index) alone,
// workers share no mutable state, and aggregation walks slots in index
// order — so any worker count yields bit-identical results.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/backend.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;
using runtime::Sweep_grid;
using runtime::Sweep_options;
using runtime::Sweep_result;
using runtime::Sweep_runner;

Sweep_grid small_grid() {
  Sweep_grid g;
  g.fft_sizes = {16, 64, 256};          // >= 3 numerologies
  g.snr_db = {10, 15, 20, 25, 30};      // >= 5 SNR points
  g.ue_counts = {2};
  g.qam_orders = {phy::Qam::qam16};
  g.slots_per_point = 1;
  return g;
}

void expect_bit_identical(const Sweep_result& a, const Sweep_result& b) {
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (size_t i = 0; i < a.slots.size(); ++i) {
    const auto& x = a.slots[i];
    const auto& y = b.slots[i];
    EXPECT_EQ(x.bits, y.bits) << "slot " << i;
    EXPECT_EQ(x.evm, y.evm) << "slot " << i;
    EXPECT_EQ(x.ber, y.ber) << "slot " << i;
    EXPECT_EQ(x.sigma2_hat, y.sigma2_hat) << "slot " << i;
    ASSERT_EQ(x.stages.size(), y.stages.size());
    for (size_t s = 0; s < x.stages.size(); ++s) {
      EXPECT_EQ(x.stages[s].cycles, y.stages[s].cycles) << "slot " << i;
      EXPECT_EQ(x.stages[s].runs, y.stages[s].runs) << "slot " << i;
    }
  }
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_EQ(a.points[p].evm, b.points[p].evm) << "point " << p;
    EXPECT_EQ(a.points[p].ber, b.points[p].ber) << "point " << p;
    EXPECT_EQ(a.points[p].sigma2_hat, b.points[p].sigma2_hat) << "point " << p;
    EXPECT_EQ(a.points[p].cycles, b.points[p].cycles) << "point " << p;
  }
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

Sweep_result run_with_workers(const Sweep_grid& g, uint32_t workers,
                              const std::string& backend = "reference") {
  Sweep_options opt;
  opt.workers = workers;
  opt.backend = backend;
  return Sweep_runner(opt).run(g);
}

TEST(Sweep, EightWorkersBitIdenticalToSerialOnReference) {
  const Sweep_grid g = small_grid();
  const auto serial = run_with_workers(g, 1);
  const auto parallel = run_with_workers(g, 8);
  ASSERT_EQ(serial.total_slots, 15u);
  EXPECT_EQ(serial.workers, 1u);
  expect_bit_identical(serial, parallel);
}

TEST(Sweep, OddWorkerCountsBitIdenticalToo) {
  Sweep_grid g = small_grid();
  g.fft_sizes = {16, 64};
  g.slots_per_point = 2;  // exercise the point -> slot fan-out
  const auto serial = run_with_workers(g, 1);
  for (const uint32_t w : {2u, 3u, 5u}) {
    expect_bit_identical(serial, run_with_workers(g, w));
  }
}

TEST(Sweep, SimBackendBitIdenticalAcrossWorkers) {
  Sweep_grid g;
  g.fft_sizes = {64};
  g.snr_db = {20, 30};
  const auto serial = run_with_workers(g, 1, "sim");
  const auto parallel = run_with_workers(g, 2, "sim");
  expect_bit_identical(serial, parallel);
  // The simulator reports cycles, and they are data-independent, so both
  // points cost the same.
  ASSERT_EQ(serial.points.size(), 2u);
  EXPECT_GT(serial.points[0].cycles, 0u);
  EXPECT_EQ(serial.points[0].cycles, serial.points[1].cycles);
}

TEST(Sweep, SlotSeedsFollowTheDerivationContract) {
  const Sweep_grid g = small_grid();
  const auto points = g.points();
  for (uint64_t i = 0; i < g.n_slots(); ++i) {
    const auto cfg = Sweep_runner::slot_config(g, points[i], i);
    EXPECT_EQ(cfg.seed, common::Rng::derive_seed(g.base_seed, i));
  }
}

TEST(Sweep, SlotSeedsStableWhenGridGrows) {
  // Appending a numerology at the end of the outermost axis must not move
  // existing slots: their indices — and therefore seeds and results — stay.
  Sweep_grid g = small_grid();
  const auto before = run_with_workers(g, 2);
  Sweep_grid grown = g;
  grown.fft_sizes.push_back(1024);
  const auto after = run_with_workers(grown, 2);
  ASSERT_EQ(after.slots.size(), before.slots.size() + grown.snr_db.size());
  for (size_t i = 0; i < before.slots.size(); ++i) {
    EXPECT_EQ(before.slots[i].bits, after.slots[i].bits) << "slot " << i;
    EXPECT_EQ(before.slots[i].evm, after.slots[i].evm) << "slot " << i;
  }
}

TEST(Sweep, EmptyGrid) {
  Sweep_grid g = small_grid();
  g.snr_db.clear();  // one empty axis empties the grid
  const auto res = run_with_workers(g, 4);
  EXPECT_EQ(res.total_slots, 0u);
  EXPECT_TRUE(res.points.empty());
  EXPECT_TRUE(res.slots.empty());
  EXPECT_EQ(res.slots_per_second(), res.slots_per_second());  // finite, no NaN

  Sweep_grid g2 = small_grid();
  g2.slots_per_point = 0;  // points exist but carry no slots
  const auto res2 = run_with_workers(g2, 4);
  EXPECT_EQ(res2.total_slots, 0u);
  ASSERT_EQ(res2.points.size(), g2.n_points());
  for (const auto& p : res2.points) {
    EXPECT_EQ(p.slots, 0u);
    EXPECT_EQ(p.evm, 0.0);
  }
}

TEST(Sweep, SinglePointMatchesDirectPipelineExecute) {
  Sweep_grid g;
  g.fft_sizes = {64};
  g.snr_db = {25};
  const auto res = run_with_workers(g, 4);
  ASSERT_EQ(res.total_slots, 1u);

  // The same slot driven by hand through the preset + backend layer.
  Sweep_options opt;
  const auto pipeline = runtime::uplink_pipeline(opt.cluster, opt.uplink);
  auto backend = runtime::make_backend("reference");
  const phy::Uplink_scenario sc(
      Sweep_runner::slot_config(g, g.points()[0], 0));
  const auto direct = pipeline.execute(sc, *backend);
  EXPECT_EQ(res.slots[0].bits, direct.bits);
  EXPECT_EQ(res.slots[0].evm, direct.evm);
  EXPECT_EQ(res.slots[0].ber, direct.ber);
  EXPECT_EQ(res.points[0].evm, direct.evm);
}

TEST(Sweep, KeepSlotsOffDropsPerSlotResults) {
  Sweep_grid g;
  g.fft_sizes = {16};
  g.snr_db = {20, 30};
  Sweep_options opt;
  opt.workers = 2;
  opt.keep_slots = false;
  const auto res = Sweep_runner(opt).run(g);
  EXPECT_TRUE(res.slots.empty());
  ASSERT_EQ(res.points.size(), 2u);
  EXPECT_GT(res.points[0].evm, 0.0);  // roll-up still aggregated
}

TEST(Sweep, ReportsThroughputAndRendersTable) {
  Sweep_grid g;
  g.fft_sizes = {16};
  g.snr_db = {30};
  const auto res = run_with_workers(g, 1);
  EXPECT_GT(res.wall_seconds, 0.0);
  EXPECT_GT(res.slots_per_second(), 0.0);
  const std::string table = res.str();
  EXPECT_NE(table.find("SNR dB"), std::string::npos);
  EXPECT_NE(table.find("reference backend"), std::string::npos);
}

TEST(Sweep, EightWorkerSpeedup) {
  // The acceptance bar: >= 3x wall-clock over serial with 8 workers on the
  // reference backend.  Needs real parallel hardware; skip on small hosts
  // (CI containers often expose 1-2 cores) where the bar is unmeetable.
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  Sweep_grid g;
  g.fft_sizes = {64, 256, 1024};
  g.snr_db = {10, 15, 20, 25, 30};
  g.slots_per_point = 2;
  Sweep_options opt;
  opt.keep_slots = false;
  opt.workers = 1;
  const auto serial = Sweep_runner(opt).run(g);
  opt.workers = 8;
  const auto parallel = Sweep_runner(opt).run(g);
  EXPECT_GE(serial.wall_seconds / parallel.wall_seconds, 3.0)
      << "serial " << serial.wall_seconds << " s, 8 workers "
      << parallel.wall_seconds << " s";
}

}  // namespace
