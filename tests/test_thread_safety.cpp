// Hammers every lazily-initialized shared table from many threads at once:
// the Q15 FFT twiddle cache (common/twiddle.h), the reference FFT's stage
// twiddles (exercised through ref::fft/ifft), the QAM constellation cache,
// and the kernel registry.  Each table must build exactly once under
// std::call_once and serve bit-identical values to every thread — the
// precondition for the sweep engine's N-worker == 1-worker guarantee.
// Run these under ThreadSanitizer via CHECK_TSAN=1 scripts/check.sh.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "baseline/reference.h"
#include "common/rng.h"
#include "common/twiddle.h"
#include "phy/qam.h"
#include "runtime/registry.h"

namespace {

using namespace pp;

// First-touch of every cache in this test binary happens inside the
// concurrent phase (no warm-up call from the main thread), so the
// build-on-first-use path itself is what races if unguarded.
template <typename Fn>
void hammer(unsigned n_threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(fn, t);
  for (auto& th : pool) th.join();
}

TEST(ThreadSafety, TwiddleTableConcurrentFirstUse) {
  constexpr unsigned kThreads = 8;
  const std::vector<uint32_t> sizes = {16, 64, 256, 1024};
  std::vector<int> failures(kThreads, 0);
  hammer(kThreads, [&](unsigned t) {
    for (int rep = 0; rep < 50; ++rep) {
      for (const uint32_t n : sizes) {
        const auto& table = common::twiddle_q15(n);
        if (table.size() != n) ++failures[t];
        // Spot-check entries against the defining formula.
        for (const uint32_t e : {0u, 1u, n / 4, n - 1}) {
          const double ang = -2.0 * M_PI * e / n;
          const auto want = common::to_cq15({std::cos(ang), std::sin(ang)});
          if (!(table[e] == want)) ++failures[t];
        }
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(ThreadSafety, ReferenceFftConcurrentFirstUse) {
  constexpr unsigned kThreads = 8;
  const uint32_t n = 256;
  common::Rng rng(5);
  std::vector<ref::cd> x(n);
  for (auto& v : x) v = rng.cnormal();

  // Every thread computes the same transform (first use builds the stage
  // twiddle tables); all results must agree bit-for-bit.
  std::vector<std::vector<ref::cd>> got(kThreads);
  hammer(kThreads, [&](unsigned t) { got[t] = ref::ifft(ref::fft(x)); });
  for (unsigned t = 1; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), got[0].size());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[t][i].real(), got[0][i].real());
      EXPECT_EQ(got[t][i].imag(), got[0][i].imag());
    }
  }
  // And the round trip stays a faithful identity.
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(got[0][i] - x[i]), 0.0, 1e-9);
  }
}

TEST(ThreadSafety, QamTableConcurrentFirstUse) {
  constexpr unsigned kThreads = 8;
  const std::vector<phy::Qam> orders = {phy::Qam::qpsk, phy::Qam::qam16,
                                        phy::Qam::qam64, phy::Qam::qam256};
  std::vector<int> failures(kThreads, 0);
  hammer(kThreads, [&](unsigned t) {
    for (int rep = 0; rep < 50; ++rep) {
      for (const phy::Qam q : orders) {
        const auto& table = phy::qam_table(q);
        if (table.size() != static_cast<uint32_t>(q)) ++failures[t];
        // Unit average symbol energy, the constellation invariant.
        double e = 0.0;
        for (const auto& s : table) e += std::norm(s);
        if (std::abs(e / table.size() - 1.0) > 1e-12) ++failures[t];
        // Modulate/demodulate round trip through the shared table.
        const uint32_t bps = phy::qam_bits(q);
        std::vector<uint8_t> bits(bps * 4);
        for (size_t i = 0; i < bits.size(); ++i) {
          bits[i] = static_cast<uint8_t>((i + t + rep) % 2);
        }
        const auto symbols = phy::qam_modulate(q, bits);
        if (phy::qam_demodulate(q, symbols) != bits) ++failures[t];
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(ThreadSafety, RegistryConcurrentKernelCreation) {
  // Registry::instance() initializes on first use; concurrent make() calls
  // (each on a private machine, as sweep workers do) must agree on results.
  constexpr unsigned kThreads = 4;
  std::vector<uint64_t> cycles(kThreads, 0);
  hammer(kThreads, [&](unsigned t) {
    const auto cfg = arch::Cluster_config::minipool();
    sim::Machine m(cfg);
    arch::L1_alloc alloc(m.config());
    auto k = runtime::make_kernel("fft.serial", m, alloc,
                                  runtime::Params().set("n", 64u));
    common::Rng rng(1);
    k->bind_default_inputs(rng);
    cycles[t] = k->launch().cycles;
  });
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(cycles[t], cycles[0]);
}

}  // namespace
