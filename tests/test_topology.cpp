// Cluster topology and address-map invariants for both published
// configurations and the test configuration.
#include <gtest/gtest.h>

#include "arch/address_map.h"
#include "arch/topology.h"

namespace {

using namespace pp::arch;

TEST(Topology, MempoolDimensions) {
  const auto c = Cluster_config::mempool();
  EXPECT_EQ(c.n_cores(), 256u);
  EXPECT_EQ(c.n_groups, 4u);
  EXPECT_EQ(c.n_tiles(), 64u);
  EXPECT_EQ(c.banks_per_tile(), 16u);
  EXPECT_EQ(c.n_banks(), 1024u);
  EXPECT_EQ(c.l1_words() * 4, 1024u * 1024u);  // 1 MiB
}

TEST(Topology, TerapoolDimensions) {
  const auto c = Cluster_config::terapool();
  EXPECT_EQ(c.n_cores(), 1024u);
  EXPECT_EQ(c.n_groups, 8u);
  EXPECT_EQ(c.banks_per_tile(), 32u);
  EXPECT_EQ(c.n_banks(), 4096u);
  EXPECT_EQ(c.l1_words() * 4, 4u * 1024u * 1024u);  // 4 MiB
}

TEST(Topology, LocalityClassification) {
  const auto c = Cluster_config::mempool();
  // Core 0, tile 0, group 0.
  EXPECT_EQ(c.locality(0, 0), Locality::tile);
  EXPECT_EQ(c.locality(0, c.banks_per_tile() - 1), Locality::tile);
  EXPECT_EQ(c.locality(0, c.banks_per_tile()), Locality::group);
  const bank_id remote = c.tiles_per_group * c.banks_per_tile();
  EXPECT_EQ(c.locality(0, remote), Locality::remote);
  EXPECT_EQ(c.load_use_latency(Locality::tile), 1u);
  EXPECT_EQ(c.load_use_latency(Locality::group), 3u);
  EXPECT_EQ(c.load_use_latency(Locality::remote), 5u);
}

TEST(Topology, EveryCoreHasFourLocalBanks) {
  for (const auto& c :
       {Cluster_config::mempool(), Cluster_config::terapool()}) {
    for (core_id id = 0; id < c.n_cores(); ++id) {
      const bank_id b0 = c.first_local_bank(id);
      for (uint32_t i = 0; i < c.banks_per_core; ++i) {
        EXPECT_EQ(c.locality(id, b0 + i), Locality::tile);
        EXPECT_EQ(c.tile_of_bank(b0 + i), c.tile_of_core(id));
      }
    }
  }
}

TEST(Topology, LocalBankRangesAreDisjoint) {
  const auto c = Cluster_config::terapool();
  std::vector<int> owner(c.n_banks(), -1);
  for (core_id id = 0; id < c.n_cores(); ++id) {
    for (uint32_t i = 0; i < c.banks_per_core; ++i) {
      const bank_id b = c.first_local_bank(id) + i;
      EXPECT_EQ(owner[b], -1);
      owner[b] = static_cast<int>(id);
    }
  }
  for (int o : owner) EXPECT_NE(o, -1);  // all banks covered
}

TEST(AddressMap, InterleavedRoundTrip) {
  const auto c = Cluster_config::minipool();
  Address_map map(c);
  for (addr_t a = 0; a < c.n_banks() * 4; ++a) {
    EXPECT_EQ(map.bank_word(map.bank_of(a), map.row_of(a)), a);
  }
}

TEST(AddressMap, CoreWordIsLocal) {
  const auto c = Cluster_config::minipool();
  Address_map map(c);
  for (core_id id = 0; id < c.n_cores(); ++id) {
    for (uint32_t s = 0; s < 16; ++s) {
      const addr_t a = map.core_word(id, 3, s);
      EXPECT_EQ(c.locality(id, map.bank_of(a)), Locality::tile) << id << " " << s;
    }
  }
}

TEST(L1Alloc, DisjointAllocations) {
  const auto c = Cluster_config::minipool();
  L1_alloc alloc(c);
  const addr_t a = alloc.alloc(100);
  const addr_t b = alloc.alloc(100);
  const uint32_t rows = alloc.alloc_rows(2);
  // Interleaved arrays occupy whole rows; no overlap between allocations.
  EXPECT_GE(b, a + c.n_banks());  // a's rounded row range ends before b
  EXPECT_GE(rows * c.n_banks(), b + 100);
}

TEST(L1Alloc, ScratchWordsShareRows) {
  const auto c = Cluster_config::minipool();
  L1_alloc alloc(c);
  const uint32_t before = alloc.rows_used();
  // One scratch word in every bank costs exactly one row in total.
  for (bank_id b = 0; b < c.n_banks(); ++b) alloc.alloc_word(b);
  EXPECT_EQ(alloc.rows_used(), before + 1);
  // A second word in one bank starts a second shared row.
  alloc.alloc_word(0);
  EXPECT_EQ(alloc.rows_used(), before + 2);
}

}  // namespace
