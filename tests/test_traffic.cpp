// Traffic_source determinism: seed derivation, prefix stability under a
// longer trace, arrival-order invariants, and the multi-cell mix.
#include <gtest/gtest.h>

#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::Traffic_cell;
using runtime::Traffic_config;
using runtime::Traffic_source;

Traffic_config two_cell_config(uint64_t n_slots) {
  Traffic_config cfg;
  cfg.n_slots = n_slots;
  cfg.base_seed = 7;
  Traffic_cell a;
  a.mu = 1;
  a.fft_size = 64;
  a.load = 0.8;
  Traffic_cell b;
  b.mu = 0;
  b.fft_size = 256;
  b.n_ue = 4;
  b.qam = phy::Qam::qam64;
  b.load = 0.4;
  cfg.cells = {a, b};
  return cfg;
}

void expect_same_job(const runtime::Slot_job& x, const runtime::Slot_job& y) {
  EXPECT_EQ(x.index, y.index);
  EXPECT_EQ(x.group, y.group);
  EXPECT_EQ(x.arrival_s, y.arrival_s);
  EXPECT_EQ(x.budget_s, y.budget_s);
  EXPECT_EQ(x.cfg.seed, y.cfg.seed);
  EXPECT_EQ(x.cfg.fft_size, y.cfg.fft_size);
  EXPECT_EQ(x.cfg.n_ue, y.cfg.n_ue);
  EXPECT_EQ(x.cfg.qam, y.cfg.qam);
  EXPECT_EQ(x.cfg.sigma2, y.cfg.sigma2);
}

TEST(Traffic, SlotSeedsFollowTheDerivationContract) {
  const Traffic_source src(two_cell_config(32));
  for (uint64_t i = 0; i < src.n_slots(); ++i) {
    EXPECT_EQ(src.job(i).cfg.seed, common::Rng::derive_seed(7, i));
    EXPECT_EQ(src.job(i).index, i);
  }
}

TEST(Traffic, ExtendingTheTraceDoesNotReshuffleEarlierSlots) {
  // The load-bearing stability property: growing n_slots only appends -
  // every earlier job keeps its cell, arrival time, seed and config.
  const Traffic_source small(two_cell_config(12));
  const Traffic_source large(two_cell_config(48));
  ASSERT_EQ(small.n_slots(), 12u);
  ASSERT_EQ(large.n_slots(), 48u);
  for (uint64_t i = 0; i < small.n_slots(); ++i) {
    expect_same_job(small.job(i), large.job(i));
  }
}

TEST(Traffic, RebuildIsDeterministic) {
  const Traffic_source a(two_cell_config(24));
  const Traffic_source b(two_cell_config(24));
  for (uint64_t i = 0; i < a.n_slots(); ++i) {
    expect_same_job(a.job(i), b.job(i));
  }
}

TEST(Traffic, ArrivalsNonDecreasingAndBudgetsMatchNumerology) {
  const Traffic_source src(two_cell_config(64));
  double prev = 0.0;
  for (uint64_t i = 0; i < src.n_slots(); ++i) {
    const auto job = src.job(i);
    EXPECT_GE(job.arrival_s, prev) << "slot " << i;
    prev = job.arrival_s;
    // Budget = the cell's numerology slot duration (no override set).
    const double want = job.group == 0 ? phy::slot_budget_seconds(1)
                                       : phy::slot_budget_seconds(0);
    EXPECT_EQ(job.budget_s, want) << "slot " << i;
  }
}

TEST(Traffic, CellMixMatchesConfiguredJobs) {
  // Both cells contribute, the per-cell configs flow through, and the
  // budget override wins when set.
  Traffic_config cfg = two_cell_config(64);
  cfg.cells[1].budget_s = 123e-6;
  const Traffic_source src(cfg);
  uint64_t per_cell[2] = {0, 0};
  for (uint64_t i = 0; i < src.n_slots(); ++i) {
    const auto job = src.job(i);
    ASSERT_LT(job.group, 2u);
    ++per_cell[job.group];
    if (job.group == 0) {
      EXPECT_EQ(job.cfg.fft_size, 64u);
      EXPECT_EQ(job.cfg.n_ue, 2u);
    } else {
      EXPECT_EQ(job.cfg.fft_size, 256u);
      EXPECT_EQ(job.cfg.n_ue, 4u);
      EXPECT_EQ(job.cfg.qam, phy::Qam::qam64);
      EXPECT_EQ(job.budget_s, 123e-6);
    }
  }
  EXPECT_GT(per_cell[0], 0u);
  EXPECT_GT(per_cell[1], 0u);
  // Cell 0 runs at 2x the per-slot load of cell 1 on a half-length slot,
  // so it should dominate the trace.
  EXPECT_GT(per_cell[0], per_cell[1]);
}

TEST(Traffic, GroupLabelsNameTheCells) {
  Traffic_config cfg = two_cell_config(4);
  cfg.cells[0].name = "macro";
  const Traffic_source src(cfg);
  EXPECT_EQ(src.group_label(0), "macro");
  EXPECT_NE(src.group_label(1).find("fft256"), std::string::npos);
}

TEST(Traffic, OfferedThroughputFollowsTheCellArithmetic) {
  const Traffic_config cfg = two_cell_config(4);
  // Cell a: 2 UE x (4-2) data symbols x 64 carriers x 4 QAM bits.
  EXPECT_EQ(runtime::cell_bits_per_slot(cfg.cells[0], cfg), 1024u);
  // Cell b: 4 UE x 2 x 256 x 6.
  EXPECT_EQ(runtime::cell_bits_per_slot(cfg.cells[1], cfg), 12288u);
  // Offered bits/s: bits_per_slot x load / slot_duration, summed - all
  // exact binary operations, so the equality is bit-level.
  const double want = 1024.0 * 0.8 / cfg.cells[0].slot_seconds() +
                      12288.0 * 0.4 / cfg.cells[1].slot_seconds();
  EXPECT_EQ(runtime::offered_bits_per_second(cfg), want);
}

}  // namespace
