// Slot workspace subsystem tests (docs/DETERMINISM.md section 10).
//
// Every backend owns grow-then-stabilize arenas for its slot buffers:
// capacity only moves up (geometrically, via common::ws_grow), reaches a
// high-water mark after warm-up, and reused storage never leaks one slot's
// values into the next (the non-interference rule - every buffer read back
// is fully overwritten first).  These tests pin:
//
//   - the ws_grow / Ws_grid / ws_shape_rows growth primitives themselves
//   - quantize_into/dequantize_into bit-identity with the returning forms
//   - workspace_bytes() growth-then-stable across repeated slot runs and
//     shape changes, on all four backends
//   - _into-path and recycled-Slot_front results bit-identical to fresh
//     runs (reuse cannot change values)
//   - per-worker workspace checkout under the thread pool and the
//     scheduler's summary mode (keep_slots=false reuses one Slot_result
//     per worker instead of retaining every slot)
#include <gtest/gtest.h>

#include <complex>
#include <string>
#include <vector>

#include "common/alloc_count.h"
#include "common/grid.h"
#include "common/thread_pool.h"
#include "runtime/backend.h"
#include "runtime/presets.h"
#include "runtime/scheduler.h"
#include "runtime/traffic.h"
#include "runtime/workspace.h"

namespace {

using namespace pp;
using common::cq15;

// ---- growth primitives -----------------------------------------------------

TEST(WorkspaceGrow, GeometricGrowthThenStable) {
  std::vector<double> v;
  common::ws_grow(v, 10);
  EXPECT_EQ(v.size(), 10u);
  const size_t cap10 = v.capacity();
  // Growing by one element doubles capacity instead of creeping.
  common::ws_grow(v, 11);
  EXPECT_EQ(v.size(), 11u);
  EXPECT_GE(v.capacity(), 2 * cap10);
  const size_t cap11 = v.capacity();
  // Shrinking the logical size never releases storage.
  common::ws_grow(v, 3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.capacity(), cap11);
  // Re-growing within capacity keeps the same storage.
  common::ws_grow(v, 11);
  EXPECT_EQ(v.capacity(), cap11);
  // A jump beyond 2x goes straight to the requested size.
  common::ws_grow(v, 10 * cap11);
  EXPECT_GE(v.capacity(), 10 * cap11);
}

TEST(WorkspaceGrow, GridReshapeKeepsFootprint) {
  common::Ws_grid<int> g;
  EXPECT_TRUE(g.empty());
  g.shape(4, 8);
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_EQ(g.cols(), 8u);
  for (size_t r = 0; r < g.rows(); ++r) {
    EXPECT_EQ(g.row(r).size(), 8u);
    for (size_t c = 0; c < g.cols(); ++c) g.at(r, c) = int(r * 100 + c);
  }
  // Rows are contiguous slices of one flat backing store.
  EXPECT_EQ(g.row(1).data(), g.data() + 8);
  EXPECT_EQ(g.at(3, 7), 307);
  const size_t high_water = g.footprint_bytes();
  EXPECT_GT(high_water, 0u);
  // Any smaller or equal reshape reuses the same storage.
  g.shape(2, 16);
  EXPECT_EQ(g.footprint_bytes(), high_water);
  g.shape(8, 4);
  EXPECT_EQ(g.footprint_bytes(), high_water);
  // Growth is monotone.
  g.shape(16, 16);
  EXPECT_GT(g.footprint_bytes(), high_water);
}

TEST(WorkspaceGrow, NestedRowsOuterNeverShrinks) {
  std::vector<std::vector<int>> rows;
  common::ws_shape_rows(rows, 6, 32);
  EXPECT_EQ(rows.size(), 6u);
  for (const auto& r : rows) EXPECT_EQ(r.size(), 32u);
  const size_t high_water = common::ws_rows_footprint(rows);
  // Shrinking the row count keeps the outer vector (and the trailing inner
  // vectors' capacity) alive; consumers take explicit row counts.
  common::ws_shape_rows(rows, 2, 32);
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(common::ws_rows_footprint(rows), high_water);
  common::ws_shape_rows(rows, 6, 32);
  EXPECT_EQ(common::ws_rows_footprint(rows), high_water);
}

TEST(WorkspaceGrow, AllocCounterDisabledReportsZero) {
  // Regular test builds run without PP_COUNT_ALLOCS: the counter must read
  // as a stable 0 so allocs_per_slot metrics gate trivially instead of
  // reporting garbage.  Under PP_COUNT_ALLOCS it must actually count.
  if (!common::alloc_count_enabled()) {
    const uint64_t a0 = common::alloc_count();
    std::vector<int> churn(1024);
    churn.resize(4096);
    EXPECT_EQ(common::alloc_count(), a0);
    EXPECT_EQ(a0, 0u);
  } else {
    std::vector<int> churn;
    const uint64_t a0 = common::alloc_count();
    churn.reserve(4096);
    EXPECT_GT(common::alloc_count(), a0);
  }
}

// ---- marshaling bit-identity -----------------------------------------------

std::vector<std::complex<double>> marshal_samples() {
  std::vector<std::complex<double>> x;
  for (int i = 0; i < 257; ++i) {
    // Mix of in-range, saturating, and sign-flipping values.
    x.emplace_back(0.013 * i - 1.6, 1.7 - 0.011 * i);
  }
  return x;
}

TEST(WorkspaceMarshal, QuantizeIntoMatchesReturningForm) {
  const auto x = marshal_samples();
  const double scale = 0.37;
  const auto returned = runtime::quantize(x, scale);
  std::vector<cq15> into;
  runtime::quantize_into(x, scale, into);
  ASSERT_EQ(returned.size(), into.size());
  for (size_t i = 0; i < into.size(); ++i) {
    EXPECT_EQ(returned[i].re, into[i].re) << i;
    EXPECT_EQ(returned[i].im, into[i].im) << i;
  }
  // Reuse with stale contents: a second _into call on a different input
  // fully overwrites, matching a fresh quantize of that input.
  std::vector<std::complex<double>> y(x.rbegin(), x.rend());
  y.resize(100);
  runtime::quantize_into(y, scale, into);
  const auto returned_y = runtime::quantize(y, scale);
  ASSERT_EQ(into.size(), returned_y.size());
  for (size_t i = 0; i < into.size(); ++i) {
    EXPECT_EQ(returned_y[i].re, into[i].re) << i;
    EXPECT_EQ(returned_y[i].im, into[i].im) << i;
  }
}

TEST(WorkspaceMarshal, DequantizeIntoMatchesReturningForm) {
  const auto q = runtime::quantize(marshal_samples(), 0.41);
  const double scale = 0.41;
  const auto returned = runtime::dequantize(q, scale);
  std::vector<std::complex<double>> into;
  runtime::dequantize_into(q, scale, into);
  ASSERT_EQ(returned.size(), into.size());
  for (size_t i = 0; i < into.size(); ++i) {
    // Bitwise equality on the doubles, not approximate.
    EXPECT_EQ(returned[i], into[i]) << i;
  }
  // Pointer-range form over an interior sub-range equals the vector form
  // on a copy of that sub-range.
  const std::vector<cq15> mid(q.begin() + 32, q.begin() + 96);
  const auto mid_returned = runtime::dequantize(mid, scale);
  runtime::dequantize_into(q.data() + 32, 64, scale, into);
  ASSERT_EQ(into.size(), mid_returned.size());
  for (size_t i = 0; i < into.size(); ++i) {
    EXPECT_EQ(mid_returned[i], into[i]) << i;
  }
}

// ---- backend workspaces ----------------------------------------------------

phy::Uplink_config small_cfg() {
  phy::Uplink_config cfg;
  cfg.n_sc = 16;
  cfg.fft_size = 16;
  cfg.n_rx = 2;
  cfg.n_beams = 2;
  cfg.n_ue = 2;
  cfg.n_symb = 3;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;
  cfg.seed = 11;
  return cfg;
}

phy::Uplink_config big_cfg() {
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qam16;
  cfg.seed = 12;
  return cfg;
}

void expect_results_equal(const runtime::Slot_result& a,
                          const runtime::Slot_result& b,
                          const std::string& what) {
  EXPECT_EQ(a.bits, b.bits) << what;
  EXPECT_EQ(a.symbols, b.symbols) << what;
  EXPECT_EQ(a.evm, b.evm) << what;
  EXPECT_EQ(a.ber, b.ber) << what;
  EXPECT_EQ(a.sigma2_hat, b.sigma2_hat) << what;
}

TEST(WorkspaceBackend, GrowthThenStableAcrossSlotRuns) {
  // workspace_bytes() is the high-water footprint of the backend's arenas:
  // zero before the first slot, grows on first contact with a shape, then
  // stays put - repeat runs and smaller shapes reuse the same storage.
  const phy::Uplink_scenario small(small_cfg());
  const phy::Uplink_scenario big(big_cfg());
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());
  for (const char* name : {"reference", "parallel", "fixed", "sim"}) {
    const auto backend = runtime::make_backend(name, 3);
    EXPECT_EQ(backend->workspace_bytes(), 0u) << name << " before first slot";
    runtime::Slot_result res;
    backend->run_slot_into(pipeline, small, res);
    const size_t after_small = backend->workspace_bytes();
    EXPECT_GT(after_small, 0u) << name;
    backend->run_slot_into(pipeline, small, res);
    EXPECT_EQ(backend->workspace_bytes(), after_small)
        << name << " re-running the same shape must not grow the workspace";
    backend->run_slot_into(pipeline, big, res);
    const size_t after_big = backend->workspace_bytes();
    EXPECT_GT(after_big, after_small) << name;
    // Back to the small shape: capacity never shrinks, never re-grows.
    backend->run_slot_into(pipeline, small, res);
    EXPECT_EQ(backend->workspace_bytes(), after_big) << name;
    backend->run_slot_into(pipeline, big, res);
    EXPECT_EQ(backend->workspace_bytes(), after_big) << name;
  }
}

TEST(WorkspaceBackend, ReusedWorkspaceResultsBitIdenticalToFreshBackend) {
  // The non-interference rule, observed from outside: a backend that has
  // executed other shapes produces exactly the bits a fresh backend does.
  const phy::Uplink_scenario small(small_cfg());
  const phy::Uplink_scenario big(big_cfg());
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());
  for (const char* name : {"reference", "parallel", "fixed", "sim"}) {
    runtime::Slot_result fresh_small =
        runtime::make_backend(name, 2)->run_slot(pipeline, small);
    runtime::Slot_result fresh_big =
        runtime::make_backend(name, 2)->run_slot(pipeline, big);
    const auto reused = runtime::make_backend(name, 2);
    runtime::Slot_result res;
    reused->run_slot_into(pipeline, big, res);
    expect_results_equal(res, fresh_big, std::string(name) + " big #1");
    reused->run_slot_into(pipeline, small, res);
    expect_results_equal(res, fresh_small, std::string(name) + " small");
    reused->run_slot_into(pipeline, big, res);
    expect_results_equal(res, fresh_big, std::string(name) + " big #2");
  }
}

TEST(WorkspaceBackend, RecycledSlotFrontBitIdenticalToWholeSlot) {
  // The scheduler's stage pipeline recycles Slot_fronts across slots; a
  // recycled front (stale beam grid from another shape) must carry exactly
  // the same values as a fresh one, and the split halves must reproduce
  // run_slot bit for bit.
  const phy::Uplink_scenario small(small_cfg());
  const phy::Uplink_scenario big(big_cfg());
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());
  for (const char* name : {"reference", "parallel", "fixed"}) {
    const auto backend = runtime::make_backend(name, 2);
    ASSERT_TRUE(backend->can_split()) << name;
    runtime::Slot_result whole_small, whole_big;
    backend->run_slot_into(pipeline, small, whole_small);
    backend->run_slot_into(pipeline, big, whole_big);

    runtime::Slot_front front;  // one recycled hand-off buffer
    runtime::Slot_result split;
    backend->run_front_into(pipeline, big, front);
    backend->run_back_into(pipeline, big, front, split);
    expect_results_equal(split, whole_big, std::string(name) + " split big");
    // Reuse the same front for the smaller slot: rows shrink, storage and
    // values must not bleed through.
    backend->run_front_into(pipeline, small, front);
    backend->run_back_into(pipeline, small, front, split);
    expect_results_equal(split, whole_small,
                         std::string(name) + " recycled front small");
    backend->run_front_into(pipeline, big, front);
    backend->run_back_into(pipeline, big, front, split);
    expect_results_equal(split, whole_big,
                         std::string(name) + " recycled front big");
  }
}

// ---- thread-pool checkout --------------------------------------------------

TEST(WorkspacePool, PerWorkerBuffersUnderThreadPool) {
  // Per-worker workspace checkout: each worker ws_grows and fills its own
  // arena; repeated dispatches reuse them.  Run under TSAN by check.sh -
  // the assertions here pin values, the sanitizer pins race-freedom.
  common::Thread_pool pool(4);
  std::vector<std::vector<double>> per_worker(pool.workers());
  for (const size_t n : {64u, 256u, 128u, 256u}) {
    pool.run([&](uint32_t w) {
      common::ws_grow(per_worker[w], n);
      for (size_t i = 0; i < n; ++i) per_worker[w][i] = double(w * 1000 + i);
    });
    for (uint32_t w = 0; w < pool.workers(); ++w) {
      ASSERT_EQ(per_worker[w].size(), n);
      EXPECT_EQ(per_worker[w][n - 1], double(w * 1000 + n - 1)) << w;
    }
  }
  const size_t footprint = common::ws_rows_footprint(per_worker);
  // A further dispatch at the high-water shape leaves capacity untouched.
  pool.run([&](uint32_t w) { common::ws_grow(per_worker[w], 256); });
  EXPECT_EQ(common::ws_rows_footprint(per_worker), footprint);
}

// ---- scheduler summary mode ------------------------------------------------

runtime::Traffic_config summary_traffic() {
  runtime::Traffic_config traffic;
  traffic.n_slots = 10;
  traffic.base_seed = 5;
  runtime::Traffic_cell cell;
  cell.mu = 1;
  cell.fft_size = 16;
  cell.n_ue = 2;
  cell.qam = phy::Qam::qam16;
  cell.load = 0.8;
  traffic.cells = {cell};
  return traffic;
}

TEST(WorkspaceScheduler, SummaryModeMatchesKeepSlots) {
  // keep_slots=false routes every slot into one reused per-worker
  // Slot_result instead of retaining all of them; the aggregates must be
  // bit-identical to the retaining run, at any worker count, pipelined or
  // not.
  const runtime::Traffic_source source(summary_traffic());
  runtime::Scheduler_options opt;
  opt.backend = "fixed";
  opt.keep_slots = true;
  opt.workers = 1;
  const auto retained = runtime::Slot_scheduler(opt).run(source);
  EXPECT_EQ(retained.slots.size(), source.n_slots());

  for (const uint32_t workers : {1u, 3u}) {
    for (const bool pipelined : {false, true}) {
      runtime::Scheduler_options sopt;
      sopt.backend = "fixed";
      sopt.keep_slots = false;
      sopt.workers = workers;
      sopt.intra = 2;  // intra-slot pool under the per-worker checkout
      sopt.pipelined = pipelined;
      const auto summary = runtime::Slot_scheduler(sopt).run(source);
      EXPECT_TRUE(summary.slots.empty())
          << "summary mode must not retain per-slot results";
      EXPECT_TRUE(retained.deterministic_equal(summary))
          << "workers " << workers << " pipelined " << pipelined;
    }
  }
}

}  // namespace
